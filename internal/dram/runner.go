package dram

import (
	"musa/internal/sim"
	"musa/internal/xrand"
)

// AddrSource produces memory request addresses; cache.AddressGen satisfies
// it, letting the open-loop runner replay an application's locality profile
// against the memory system.
type AddrSource interface {
	Next() (addr uint64, write bool)
}

// seqSource is a trivial streaming source used as a default.
type seqSource struct{ next uint64 }

func (s *seqSource) Next() (uint64, bool) {
	a := s.next
	s.next += 64
	return a, false
}

// NewStreamSource returns an AddrSource that walks memory sequentially.
func NewStreamSource() AddrSource { return &seqSource{} }

// OpenLoopResult summarizes an open-loop experiment.
type OpenLoopResult struct {
	Stats       Stats
	AvgLatency  sim.Time
	P95Latency  sim.Time
	AchievedBW  float64 // bytes/second
	OfferedBW   float64 // bytes/second
	Utilization float64 // achieved / peak
}

// RunOpenLoop injects n line requests with exponential inter-arrival times
// targeting the given offered bandwidth (bytes/second), with addresses drawn
// from src, and returns latency and bandwidth measurements. Arrivals come in
// small bursts (burst size 4) to mimic the miss clusters an out-of-order
// core produces, which also gives the FR-FCFS scheduler real choices.
func RunOpenLoop(cfg Config, policy SchedPolicy, offeredBW float64, src AddrSource, n int, seed uint64) OpenLoopResult {
	var eng sim.Engine
	ctl := NewController(&eng, cfg, policy)
	rng := xrand.New(seed)

	const burst = 4
	lineBytes := 64.0
	meanGap := lineBytes * burst / offeredBW // seconds between bursts

	// Requests come from one slab and each burst shares one completion
	// closure (all its requests arrive at the same instant) and one engine
	// event that submits the burst in order. The engine fires same-time
	// events FIFO, so one event doing four Submits is behaviorally identical
	// to four same-time events doing one each — it just costs a quarter of
	// the heap traffic and closures.
	reqs := make([]Request, n)
	latencies := make([]sim.Time, 0, n)
	t := sim.Time(0)
	for i := 0; i < n; i += burst {
		t += sim.FromSeconds(rng.Exponential(meanGap))
		hi := min(i+burst, n)
		arrive := t
		done := func(at sim.Time) { latencies = append(latencies, at-arrive) }
		for j := i; j < hi; j++ {
			addr, write := src.Next()
			reqs[j] = Request{Addr: addr, Write: write, Arrive: arrive, Done: done}
		}
		b := reqs[i:hi]
		eng.At(t, func(sim.Time) {
			for k := range b {
				ctl.Submit(&b[k])
			}
		})
	}
	eng.Run()

	res := OpenLoopResult{
		Stats:      ctl.Stats,
		AvgLatency: ctl.Stats.AvgLatency(),
		AchievedBW: ctl.Stats.AchievedBandwidth(64),
		OfferedBW:  offeredBW,
	}
	if len(latencies) > 0 {
		// Nth percentile without a stats dependency cycle: simple selection.
		idx := len(latencies) * 95 / 100
		res.P95Latency = quickSelect(latencies, idx)
	}
	res.Utilization = res.AchievedBW / cfg.PeakBandwidth()
	return res
}

// quickSelect returns the k-th smallest element (0-based) of xs, modifying
// the slice order.
func quickSelect(xs []sim.Time, k int) sim.Time {
	lo, hi := 0, len(xs)-1
	if k > hi {
		k = hi
	}
	rng := xrand.New(uint64(len(xs)))
	for lo < hi {
		p := xs[lo+rng.Intn(hi-lo+1)]
		i, j := lo, hi
		for i <= j {
			for xs[i] < p {
				i++
			}
			for xs[j] > p {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return xs[k]
}

// LatencyModel captures effective memory latency as a function of offered
// load for one (memory config, locality) pair. The node simulator resolves
// its bandwidth-contention fixed point against this curve instead of
// re-running the event-driven model inside every iteration.
type LatencyModel struct {
	PeakBW      float64   // bytes/second
	Points      []float64 // utilization sample points (0..1)
	LatenciesNs []float64 // measured latency at each point
	SatBW       float64   // achieved bandwidth at saturation (bytes/second)
}

// BuildLatencyModel measures the load-latency curve with a handful of
// open-loop runs. mkSrc must return a fresh address source per run.
func BuildLatencyModel(cfg Config, policy SchedPolicy, mkSrc func() AddrSource, reqsPerRun int, seed uint64) LatencyModel {
	points := []float64{0.05, 0.25, 0.5, 0.7, 0.85, 1.0, 1.3}
	m := LatencyModel{PeakBW: cfg.PeakBandwidth()}
	for i, u := range points {
		res := RunOpenLoop(cfg, policy, u*m.PeakBW, mkSrc(), reqsPerRun, seed+uint64(i))
		m.Points = append(m.Points, u)
		m.LatenciesNs = append(m.LatenciesNs, res.AvgLatency.Nanoseconds())
		if res.AchievedBW > m.SatBW {
			m.SatBW = res.AchievedBW
		}
	}
	return m
}

// LatencyNs interpolates the effective latency at the given offered
// bandwidth (bytes/second). Beyond the measured range the last point's
// latency is scaled by the overload factor, modeling unbounded queueing.
func (m LatencyModel) LatencyNs(offeredBW float64) float64 {
	if len(m.Points) == 0 {
		return 0
	}
	u := offeredBW / m.PeakBW
	if u <= m.Points[0] {
		return m.LatenciesNs[0]
	}
	for i := 1; i < len(m.Points); i++ {
		if u <= m.Points[i] {
			f := (u - m.Points[i-1]) / (m.Points[i] - m.Points[i-1])
			return m.LatenciesNs[i-1] + f*(m.LatenciesNs[i]-m.LatenciesNs[i-1])
		}
	}
	last := m.LatenciesNs[len(m.LatenciesNs)-1]
	return last * (u / m.Points[len(m.Points)-1])
}

// SustainableBW returns the bandwidth the device actually sustains, which
// caps application throughput in the node model.
func (m LatencyModel) SustainableBW() float64 { return m.SatBW }
