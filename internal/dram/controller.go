package dram

import (
	"fmt"

	"musa/internal/sim"
)

// Config describes a memory subsystem: a spec and a channel count. The
// paper's sweep uses 4-channel and 8-channel DDR4-2333; the unconventional
// configurations add 16-channel DDR4 (MEM+) and 16-channel HBM (MEM++).
type Config struct {
	Spec     Spec
	Channels int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.Channels <= 0 || c.Channels&(c.Channels-1) != 0 {
		return fmt.Errorf("dram: channel count %d must be a positive power of two", c.Channels)
	}
	return nil
}

// PeakBandwidth returns the aggregate peak data bandwidth in bytes/second.
func (c Config) PeakBandwidth() float64 {
	return float64(c.Channels) * c.Spec.PeakChannelBandwidth()
}

// Request is one line-sized memory transaction.
type Request struct {
	Addr   uint64
	Write  bool
	Arrive sim.Time
	// Done, if non-nil, is invoked at completion time.
	Done func(at sim.Time)
}

// CommandStats counts issued DRAM commands; the power model converts these
// to energy (DRAMPower substitute).
type CommandStats struct {
	Act, Pre, Rd, Wr, Ref int64
}

// Stats aggregates controller activity.
type Stats struct {
	Commands     CommandStats
	Reads        int64
	Writes       int64
	TotalLatency sim.Time // sum over completed requests (arrival -> data)
	DataBusBusy  sim.Time // total data-bus occupancy across channels
	LastFinish   sim.Time
	RowHits      int64
	RowMisses    int64
	RowConflicts int64
}

// AvgLatency returns the mean request latency.
func (s Stats) AvgLatency() sim.Time {
	n := s.Reads + s.Writes
	if n == 0 {
		return 0
	}
	return s.TotalLatency / sim.Time(n)
}

// AchievedBandwidth returns bytes/second moved up to LastFinish.
func (s Stats) AchievedBandwidth(lineBytes int) float64 {
	if s.LastFinish <= 0 {
		return 0
	}
	return float64((s.Reads+s.Writes)*int64(lineBytes)) / s.LastFinish.Seconds()
}

// RowHitRate returns the fraction of requests that hit an open row.
func (s Stats) RowHitRate() float64 {
	t := s.RowHits + s.RowMisses + s.RowConflicts
	if t == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(t)
}

type bank struct {
	openRow int64    // -1 when precharged
	readyAt sim.Time // earliest next column command
	preAt   sim.Time // earliest allowed precharge (tRAS / tWR / tRTP)
	actAt   sim.Time // earliest next activate
}

type channel struct {
	banks         []bank
	busFreeAt     sim.Time
	queue         []*Request
	actTimes      []sim.Time // sliding window for tFAW
	refreshedTo   sim.Time   // refreshes accounted up to this time
	refBlockUntil sim.Time
	scheduling    bool
}

// SchedPolicy selects the queue policy; FR-FCFS is the paper's default and
// FCFS exists for the ablation bench.
type SchedPolicy int

const (
	FRFCFS SchedPolicy = iota
	FCFS
)

func (p SchedPolicy) String() string {
	if p == FCFS {
		return "fcfs"
	}
	return "fr-fcfs"
}

// Controller is the multi-channel memory controller. Drive it by calling
// Submit and running the shared engine. It is not safe for concurrent use.
type Controller struct {
	cfg      Config
	eng      *sim.Engine
	channels []*channel
	policy   SchedPolicy
	clk      sim.Time
	Stats    Stats
	queueCap int
}

// NewController creates a controller on the given engine; it panics on
// invalid configuration. Refresh events are scheduled lazily on first use.
func NewController(eng *sim.Engine, cfg Config, policy SchedPolicy) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Controller{
		cfg:      cfg,
		eng:      eng,
		policy:   policy,
		clk:      sim.Time(cfg.Spec.ClockPs()),
		queueCap: 64,
	}
	for i := 0; i < cfg.Channels; i++ {
		ch := &channel{banks: make([]bank, cfg.Spec.BanksPerChannel)}
		for b := range ch.banks {
			ch.banks[b].openRow = -1
		}
		c.channels = append(c.channels, ch)
	}
	return c
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

func (c *Controller) cycles(n int) sim.Time { return sim.Time(n) * c.clk }

// applyRefresh lazily accounts for all refreshes due up to time t, so that
// refresh does not need self-perpetuating events that would keep the engine
// alive forever. A refresh closes every row and blocks the channel for TRFC.
// It returns t pushed past any refresh blackout in progress.
func (c *Controller) applyRefresh(ch *channel, t sim.Time) sim.Time {
	period := c.cycles(c.cfg.Spec.TREFI)
	for ch.refreshedTo+period <= t {
		ch.refreshedTo += period
		c.Stats.Commands.Ref++
		ch.refBlockUntil = ch.refreshedTo + c.cycles(c.cfg.Spec.TRFC)
		for b := range ch.banks {
			ch.banks[b].openRow = -1
			if ch.banks[b].actAt < ch.refBlockUntil {
				ch.banks[b].actAt = ch.refBlockUntil
			}
		}
	}
	if t < ch.refBlockUntil {
		t = ch.refBlockUntil
	}
	return t
}

// mapAddr decomposes a line address into (channel, bank, row) using a
// row:bank:column:channel layout: channel bits are lowest (lines stripe
// across channels), followed by the column within a row, then the bank, then
// the row. Sequential streams therefore fill a whole row before switching to
// the next bank, giving both row-buffer locality and round-robin bank-level
// parallelism at row granularity.
func (c *Controller) mapAddr(addr uint64) (chIdx, bankIdx int, row int64) {
	line := addr >> 6
	chIdx = int(line % uint64(c.cfg.Channels))
	rest := line / uint64(c.cfg.Channels)
	linesPerRow := uint64(c.cfg.Spec.RowBytes / 64)
	rest /= linesPerRow // drop the column
	bankIdx = int(rest % uint64(c.cfg.Spec.BanksPerChannel))
	row = int64(rest / uint64(c.cfg.Spec.BanksPerChannel))
	return chIdx, bankIdx, row
}

// QueueLen returns the total number of queued requests (test helper).
func (c *Controller) QueueLen() int {
	n := 0
	for _, ch := range c.channels {
		n += len(ch.queue)
	}
	return n
}

// Submit enqueues a request at the engine's current time (or req.Arrive if
// later events have not yet run; the caller normally schedules Submit from
// an engine event so Now()==Arrive).
func (c *Controller) Submit(req *Request) {
	chIdx, _, _ := c.mapAddr(req.Addr)
	ch := c.channels[chIdx]
	ch.queue = append(ch.queue, req)
	c.kick(ch)
}

// kick ensures a scheduling pass is pending for the channel.
func (c *Controller) kick(ch *channel) {
	if ch.scheduling {
		return
	}
	ch.scheduling = true
	c.eng.After(0, func(now sim.Time) {
		ch.scheduling = false
		c.drain(ch, now)
	})
}

// drain issues as many requests as current timing allows, scheduling a
// wake-up for the earliest future issue slot otherwise.
func (c *Controller) drain(ch *channel, now sim.Time) {
	for len(ch.queue) > 0 {
		idx := c.pick(ch)
		req := ch.queue[idx]
		finish := c.issue(ch, req, now)
		_ = finish
		ch.queue = append(ch.queue[:idx], ch.queue[idx+1:]...)
	}
}

// pick selects the next request index per policy.
func (c *Controller) pick(ch *channel) int {
	if c.policy == FCFS || len(ch.queue) == 1 {
		return 0
	}
	// FR-FCFS: oldest row-hit first, else oldest.
	for i, req := range ch.queue {
		_, b, row := c.mapAddr(req.Addr)
		if ch.banks[b].openRow == row {
			return i
		}
	}
	return 0
}

// issue computes the command schedule for req and returns its completion
// time. The model issues PRE/ACT/CAS with the principal DDR4 constraints:
// tRCD, tCL, tRP, tRAS, tWR, tRTP, tCCD on the shared data bus, tRRD/tFAW
// between activates, and refresh blackouts.
func (c *Controller) issue(ch *channel, req *Request, now sim.Time) sim.Time {
	spec := c.cfg.Spec
	_, bIdx, row := c.mapAddr(req.Addr)
	b := &ch.banks[bIdx]

	t := c.applyRefresh(ch, now)

	switch {
	case b.openRow == row:
		c.Stats.RowHits++
	case b.openRow < 0:
		c.Stats.RowMisses++
	default:
		c.Stats.RowConflicts++
	}

	if b.openRow != row {
		if b.openRow >= 0 {
			// PRE then ACT.
			pre := maxTime(t, b.preAt)
			c.Stats.Commands.Pre++
			t = pre + c.cycles(spec.TRP)
		}
		act := maxTime(t, b.actAt, c.fawGate(ch))
		c.Stats.Commands.Act++
		ch.actTimes = append(ch.actTimes, act)
		if len(ch.actTimes) > 4 {
			ch.actTimes = ch.actTimes[len(ch.actTimes)-4:]
		}
		b.openRow = row
		b.preAt = act + c.cycles(spec.TRAS)
		t = act + c.cycles(spec.TRCD)
	}

	// Column command: wait for bank column timing and data bus.
	cas := maxTime(t, b.readyAt, ch.busFreeAt-c.cycles(spec.TCL))
	dataStart := cas + c.cycles(spec.TCL)
	dataEnd := dataStart + c.cycles(spec.TBL)
	ch.busFreeAt = dataEnd
	b.readyAt = cas + c.cycles(spec.TCCD)
	if req.Write {
		c.Stats.Commands.Wr++
		c.Stats.Writes++
		wrDone := dataEnd + c.cycles(spec.TWR)
		if wrDone > b.preAt {
			b.preAt = wrDone
		}
	} else {
		c.Stats.Commands.Rd++
		c.Stats.Reads++
		rtp := cas + c.cycles(spec.TRTP)
		if rtp > b.preAt {
			b.preAt = rtp
		}
	}

	c.Stats.TotalLatency += dataEnd - req.Arrive
	c.Stats.DataBusBusy += c.cycles(spec.TBL)
	if dataEnd > c.Stats.LastFinish {
		c.Stats.LastFinish = dataEnd
	}
	if req.Done != nil {
		done := req.Done
		c.eng.At(dataEnd, func(at sim.Time) { done(at) })
	}
	return dataEnd
}

// fawGate returns the earliest time a new ACT may issue under tFAW.
func (c *Controller) fawGate(ch *channel) sim.Time {
	if len(ch.actTimes) < 4 {
		return 0
	}
	return ch.actTimes[len(ch.actTimes)-4] + c.cycles(c.cfg.Spec.TFAW)
}

func maxTime(ts ...sim.Time) sim.Time {
	m := ts[0]
	for _, t := range ts[1:] {
		if t > m {
			m = t
		}
	}
	return m
}
