package cpu

import (
	"musa/internal/cache"
	"musa/internal/isa"
)

// Execution latencies in cycles per instruction class. Loads and stores get
// their latency from the annotated cache level instead.
var execLatency = [isa.NumClasses]int64{
	isa.IntALU: 1,
	isa.IntMul: 3,
	isa.FPAdd:  3,
	isa.FPMul:  4,
	isa.FPDiv:  20,
	isa.FPFMA:  5,
	isa.Load:   0, // from cache
	isa.Store:  1, // into store buffer; drains in background
	isa.Branch: 1,
}

// occupancy is the cycles an instruction blocks its port (1 = pipelined).
var occupancy = [isa.NumClasses]int64{
	isa.IntALU: 1,
	isa.IntMul: 1,
	isa.FPAdd:  1,
	isa.FPMul:  1,
	isa.FPDiv:  16, // unpipelined divider
	isa.FPFMA:  1,
	isa.Load:   1,
	isa.Store:  1,
	isa.Branch: 1,
}

// mispredictPenalty is the pipeline refill penalty in cycles.
const mispredictPenalty = 14

// Result accumulates the outcome of one core simulation.
type Result struct {
	Cycles       int64
	Instructions int64 // dynamic ops executed (after fusion)
	LaneWork     int64 // total scalar elements (fusion-invariant work)
	ClassOps     [isa.NumClasses]int64
	ClassLanes   [isa.NumClasses]int64
	Mispredicts  int64

	L1, L2, L3          cache.Stats
	MemReads, MemWrites int64

	// Stall attribution (dispatch-blocked cycles by principal cause).
	StallROB, StallSB, StallRF int64
	ROBOccupancySum            int64 // for average occupancy = Sum/Cycles
}

// IPC returns committed instructions (fused ops) per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// MemRequestsPerCycle returns DRAM line requests per cycle, used by the node
// model to compute offered bandwidth.
func (r Result) MemRequestsPerCycle() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.MemReads+r.MemWrites) / float64(r.Cycles)
}

// depWindow is the history length for producer lookups. Producer distances
// beyond this are treated as long-resolved.
const depWindow = 512

// RunTiming replays an annotated trace through the one-pass out-of-order
// timing model (see the package comment) and returns the result. Cache
// statistics are copied from the annotation. It panics on an invalid
// configuration.
func RunTiming(cfg Config, ann AnnotateResult, lat LevelLatencies) Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	var res Result

	// Completion cycles of the last depWindow instructions (ring buffer).
	var complete [depWindow]int64
	// Commit cycles ring for ROB-full stalls: commitAt[i % ROB].
	commitAt := make([]int64, cfg.ROB)
	// Store-buffer drain cycles ring.
	sbFree := make([]int64, cfg.StoreBuffer)
	// Register-file rings: completion cycles of in-flight int/FP producers.
	intRF := make([]int64, cfg.IntRF)
	fpRF := make([]int64, cfg.FPRF)
	var nInt, nFP, nStores int64

	// Port next-free times.
	aluFree := make([]int64, cfg.ALUs)
	fpuFree := make([]int64, cfg.FPUs)

	var dispatchCycle int64 // cycle the next instruction dispatches
	var inCycle int         // instructions already dispatched this cycle
	var lastCommit int64    // last in-order commit cycle
	var commitsInCycle int

	for i64, in := range ann.Instrs {
		i := int64(i64)

		// --- Dispatch: in-order, IssueWidth per cycle. ---
		if inCycle >= cfg.IssueWidth {
			dispatchCycle++
			inCycle = 0
		}
		// Structural stalls push the dispatch cycle forward.
		if i >= int64(cfg.ROB) {
			if free := commitAt[i%int64(cfg.ROB)]; free > dispatchCycle {
				res.StallROB += free - dispatchCycle
				dispatchCycle = free
				inCycle = 0
			}
		}
		switch {
		case in.Class == isa.Store:
			if nStores >= int64(cfg.StoreBuffer) {
				if free := sbFree[nStores%int64(cfg.StoreBuffer)]; free > dispatchCycle {
					res.StallSB += free - dispatchCycle
					dispatchCycle = free
					inCycle = 0
				}
			}
		case in.Class.IsFP():
			if nFP >= int64(cfg.FPRF) {
				if free := fpRF[nFP%int64(cfg.FPRF)]; free > dispatchCycle {
					res.StallRF += free - dispatchCycle
					dispatchCycle = free
					inCycle = 0
				}
			}
		default:
			if nInt >= int64(cfg.IntRF) {
				if free := intRF[nInt%int64(cfg.IntRF)]; free > dispatchCycle {
					res.StallRF += free - dispatchCycle
					dispatchCycle = free
					inCycle = 0
				}
			}
		}
		disp := dispatchCycle
		inCycle++

		// --- Ready: wait for producers. ---
		ready := disp
		if in.Dep1 > 0 && int64(in.Dep1) <= i && int64(in.Dep1) < depWindow {
			if t := complete[(i-int64(in.Dep1))%depWindow]; t > ready {
				ready = t
			}
		}
		if in.Dep2 > 0 && int64(in.Dep2) <= i && int64(in.Dep2) < depWindow {
			if t := complete[(i-int64(in.Dep2))%depWindow]; t > ready {
				ready = t
			}
		}

		// --- Issue to a port. ---
		var ports []int64
		if in.Class.IsFP() {
			ports = fpuFree
		} else {
			ports = aluFree
		}
		unit := 0
		for u := 1; u < len(ports); u++ {
			if ports[u] < ports[unit] {
				unit = u
			}
		}
		start := ready
		if ports[unit] > start {
			start = ports[unit]
		}
		ports[unit] = start + occupancy[in.Class]

		// --- Execute. ---
		latency := execLatency[in.Class]
		switch in.Class {
		case isa.Load:
			latency = lat.Latency(in.Level)
		case isa.Store:
			// Stores retire into the store buffer quickly; the drain time
			// (write latency at the annotated level) holds the SB entry.
			sbFree[nStores%int64(cfg.StoreBuffer)] = start + lat.Latency(in.Level)
			nStores++
		}
		fin := start + latency

		if in.Flags&FlagMispredict != 0 {
			res.Mispredicts++
			// Pipeline flush: dispatch resumes after resolution + refill.
			if fin+mispredictPenalty > dispatchCycle {
				dispatchCycle = fin + mispredictPenalty
				inCycle = 0
			}
		}

		// --- Commit: in-order, IssueWidth per cycle. ---
		if commitsInCycle >= cfg.IssueWidth {
			lastCommit++
			commitsInCycle = 0
		}
		cm := fin
		if cm < lastCommit {
			cm = lastCommit
		}
		if cm > lastCommit {
			commitsInCycle = 0
		}
		lastCommit = cm
		commitsInCycle++

		// --- Bookkeeping. ---
		complete[i%depWindow] = fin
		commitAt[i%int64(cfg.ROB)] = cm
		if in.Class.IsFP() {
			fpRF[nFP%int64(cfg.FPRF)] = fin
			nFP++
		} else if in.Class != isa.Store {
			intRF[nInt%int64(cfg.IntRF)] = fin
			nInt++
		}
		res.ROBOccupancySum += cm - disp
		res.Instructions++
		res.LaneWork += int64(in.Lanes)
		res.ClassOps[in.Class]++
		res.ClassLanes[in.Class] += int64(in.Lanes)
	}

	if res.Instructions > 0 {
		res.Cycles = lastCommit + 1
	}
	res.L1 = ann.L1
	res.L2 = ann.L2
	res.L3 = ann.L3
	res.MemReads = ann.MemReads
	res.MemWrites = ann.MemWrites
	return res
}

// Core bundles a configuration with a cache hierarchy for single-shot
// stream simulation (annotate + timing in one call). The node simulator
// uses Annotate/RunTiming directly to reuse annotations across replays.
type Core struct {
	cfg  Config
	hier *cache.Hierarchy
	seed uint64

	// BranchMispredictRate is the probability a branch flushes the pipeline
	// (an application property; the paper derives it from the traced
	// binary).
	BranchMispredictRate float64
}

// New builds a core bound to a cache hierarchy; it panics on invalid
// configuration.
func New(cfg Config, hier *cache.Hierarchy, seed uint64) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Core{cfg: cfg, hier: hier, seed: seed}
}

// Config returns the core configuration.
func (c *Core) Config() Config { return c.cfg }

// Run annotates the stream against the core's hierarchy and replays it
// through the timing model. Memory latency comes from the hierarchy's
// configured MemLatencyCycle.
func (c *Core) Run(stream isa.Stream) Result {
	ann := Annotate(stream, c.hier, c.BranchMispredictRate, c.seed)
	h := c.hier.Config()
	lat := LevelLatencies{
		L1:  int64(h.L1.LatencyCycle),
		L2:  int64(h.L2.LatencyCycle),
		L3:  int64(h.L3.LatencyCycle),
		Mem: int64(h.L3.LatencyCycle + h.MemLatencyCycle),
	}
	return RunTiming(c.cfg, ann, lat)
}
