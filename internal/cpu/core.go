package cpu

import (
	"musa/internal/cache"
	"musa/internal/isa"
)

// Execution latencies in cycles per instruction class. Loads and stores get
// their latency from the annotated cache level instead.
var execLatency = [isa.NumClasses]int64{
	isa.IntALU: 1,
	isa.IntMul: 3,
	isa.FPAdd:  3,
	isa.FPMul:  4,
	isa.FPDiv:  20,
	isa.FPFMA:  5,
	isa.Load:   0, // from cache
	isa.Store:  1, // into store buffer; drains in background
	isa.Branch: 1,
}

// occupancy is the cycles an instruction blocks its port (1 = pipelined).
var occupancy = [isa.NumClasses]int64{
	isa.IntALU: 1,
	isa.IntMul: 1,
	isa.FPAdd:  1,
	isa.FPMul:  1,
	isa.FPDiv:  16, // unpipelined divider
	isa.FPFMA:  1,
	isa.Load:   1,
	isa.Store:  1,
	isa.Branch: 1,
}

// mispredictPenalty is the pipeline refill penalty in cycles.
const mispredictPenalty = 14

// Result accumulates the outcome of one core simulation.
type Result struct {
	Cycles       int64
	Instructions int64 // dynamic ops executed (after fusion)
	LaneWork     int64 // total scalar elements (fusion-invariant work)
	ClassOps     [isa.NumClasses]int64
	ClassLanes   [isa.NumClasses]int64
	Mispredicts  int64

	L1, L2, L3          cache.Stats
	MemReads, MemWrites int64

	// Stall attribution (dispatch-blocked cycles by principal cause).
	StallROB, StallSB, StallRF int64
	ROBOccupancySum            int64 // for average occupancy = Sum/Cycles
}

// IPC returns committed instructions (fused ops) per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// MemRequestsPerCycle returns DRAM line requests per cycle, used by the node
// model to compute offered bandwidth.
func (r Result) MemRequestsPerCycle() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.MemReads+r.MemWrites) / float64(r.Cycles)
}

// depWindow is the history length for producer lookups. Producer distances
// beyond this are treated as long-resolved. It must stay a power of two:
// the completion ring is indexed with a mask.
const depWindow = 512

// levelIndex extracts a meta word's cache level as an index into a
// LevelLatencies table, mapping out-of-range values (a corrupt artifact) to
// 0 — the same L1 fallback LevelLatencies.Latency applies.
func levelIndex(m uint32) uint8 {
	lvl := uint8(m >> MetaLevelShift)
	if lvl > uint8(cache.LevelMem) {
		return 0
	}
	return lvl
}

// RunTiming replays an annotated trace through the one-pass out-of-order
// timing model (see the package comment) and returns the result. Cache
// statistics are copied from the annotation. It panics on an invalid
// configuration.
//
// This is the hottest loop of a sweep (it runs once per fixed-point
// iteration of every point), so it is written allocation-free and
// division-free: the ROB/store-buffer/register-file rings are indexed by
// increment-and-wrap cursors instead of runtime modulo (ring sizes are not
// powers of two), level latencies come from a direct-indexed table, and the
// trace is consumed as three dense struct-of-arrays columns.
func RunTiming(cfg Config, ann AnnotateResult, lat LevelLatencies) Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	var res Result

	latTab := lat.table()

	// Completion cycles of the last depWindow instructions (ring buffer).
	var complete [depWindow]int64
	// Commit cycles ring for ROB-full stalls: commitAt[i % ROB].
	commitAt := make([]int64, cfg.ROB)
	// Store-buffer drain cycles ring.
	sbFree := make([]int64, cfg.StoreBuffer)
	// Register-file rings: completion cycles of in-flight int/FP producers.
	intRF := make([]int64, cfg.IntRF)
	fpRF := make([]int64, cfg.FPRF)
	var nInt, nFP, nStores int64
	// Ring cursors, each maintained as counter-mod-length by wrap-on-equal.
	var robIdx, sbIdx, intIdx, fpIdx int

	// Port next-free times.
	aluFree := make([]int64, cfg.ALUs)
	fpuFree := make([]int64, cfg.FPUs)

	var dispatchCycle int64 // cycle the next instruction dispatches
	var inCycle int         // instructions already dispatched this cycle
	var lastCommit int64    // last in-order commit cycle
	var commitsInCycle int

	rob := int64(cfg.ROB)
	sbCap, fpCap, intCap := int64(cfg.StoreBuffer), int64(cfg.FPRF), int64(cfg.IntRF)
	metas := ann.Meta
	if len(ann.Deps) < len(metas) {
		panic("cpu: annotation dep column shorter than meta column")
	}
	deps := ann.Deps[:len(metas)] // bounds-check elimination for deps[i64]

	// Stall and occupancy accumulators stay in locals for the duration of
	// the loop so they can live in registers instead of result-struct
	// memory.
	var stallROB, stallSB, stallRF, robOcc int64

	for i64, m := range metas {
		i := int64(i64)
		class := isa.Class(m & 0xff)
		isFP := m&(FlagFP<<MetaFlagsShift) != 0

		// --- Dispatch: in-order, IssueWidth per cycle. ---
		if inCycle >= cfg.IssueWidth {
			dispatchCycle++
			inCycle = 0
		}
		// Structural stalls push the dispatch cycle forward. Whether a
		// resource actually stalls is data-dependent and unpredictable, so
		// each check is written as max + conditional-move instead of a
		// branch; the outer saturation conditions are monotone (the
		// counters never decrease) and predict perfectly.
		if i >= rob {
			free := commitAt[robIdx]
			nd := max(dispatchCycle, free)
			stallROB += nd - dispatchCycle
			if nd != dispatchCycle {
				inCycle = 0
			}
			dispatchCycle = nd
		}
		switch {
		case class == isa.Store:
			if nStores >= sbCap {
				free := sbFree[sbIdx]
				nd := max(dispatchCycle, free)
				stallSB += nd - dispatchCycle
				if nd != dispatchCycle {
					inCycle = 0
				}
				dispatchCycle = nd
			}
		case isFP:
			if nFP >= fpCap {
				free := fpRF[fpIdx]
				nd := max(dispatchCycle, free)
				stallRF += nd - dispatchCycle
				if nd != dispatchCycle {
					inCycle = 0
				}
				dispatchCycle = nd
			}
		default:
			if nInt >= intCap {
				free := intRF[intIdx]
				nd := max(dispatchCycle, free)
				stallRF += nd - dispatchCycle
				if nd != dispatchCycle {
					inCycle = 0
				}
				dispatchCycle = nd
			}
		}
		disp := dispatchCycle
		inCycle++

		// --- Ready: wait for producers (validity pre-resolved by PackDeps). ---
		// Branchless: producer presence is data-dependent and defeats the
		// branch predictor, so both ring slots are loaded unconditionally
		// (d == 0 reads the instruction's own slot — a stale value that the
		// conditional move below discards) and folded in with selects.
		dp := deps[i64]
		d1 := int64(dp & 0xffff)
		d2 := int64(dp >> 16)
		v1 := complete[(i-d1)&(depWindow-1)]
		v2 := complete[(i-d2)&(depWindow-1)]
		if d1 == 0 {
			v1 = 0
		}
		if d2 == 0 {
			v2 = 0
		}
		ready := max(disp, max(v1, v2))

		// --- Issue to a port. ---
		var ports []int64
		if isFP {
			ports = fpuFree
		} else {
			ports = aluFree
		}
		// Min-scan with the best value in a register: no dependent
		// ports[unit] reload inside the loop.
		unit, best := 0, ports[0]
		for u := 1; u < len(ports); u++ {
			if v := ports[u]; v < best {
				unit, best = u, v
			}
		}
		start := max(ready, best)
		ports[unit] = start + occupancy[class]

		// --- Execute. ---
		// The memory-level latency is computed unconditionally (a shift and
		// a table load) so the load case is a select, not a branch.
		memLat := latTab[levelIndex(m)]
		latency := execLatency[class]
		if class == isa.Load {
			latency = memLat
		}
		if class == isa.Store {
			// Stores retire into the store buffer quickly; the drain time
			// (write latency at the annotated level) holds the SB entry.
			sbFree[sbIdx] = start + memLat
			nStores++
			if sbIdx++; sbIdx == cfg.StoreBuffer {
				sbIdx = 0
			}
		}
		fin := start + latency

		if m&(FlagMispredict<<MetaFlagsShift) != 0 {
			// Pipeline flush: dispatch resumes after resolution + refill.
			if fin+mispredictPenalty > dispatchCycle {
				dispatchCycle = fin + mispredictPenalty
				inCycle = 0
			}
		}

		// --- Commit: in-order, IssueWidth per cycle. ---
		if commitsInCycle >= cfg.IssueWidth {
			lastCommit++
			commitsInCycle = 0
		}
		cm := max(fin, lastCommit)
		if cm != lastCommit {
			commitsInCycle = 0
		}
		lastCommit = cm
		commitsInCycle++

		// --- Bookkeeping. ---
		complete[i&(depWindow-1)] = fin
		commitAt[robIdx] = cm
		if robIdx++; robIdx == cfg.ROB {
			robIdx = 0
		}
		if isFP {
			fpRF[fpIdx] = fin
			nFP++
			if fpIdx++; fpIdx == cfg.FPRF {
				fpIdx = 0
			}
		} else if class != isa.Store {
			intRF[intIdx] = fin
			nInt++
			if intIdx++; intIdx == cfg.IntRF {
				intIdx = 0
			}
		}
		robOcc += cm - disp
	}
	res.StallROB, res.StallSB, res.StallRF = stallROB, stallSB, stallRF
	res.ROBOccupancySum = robOcc

	// Timing-independent aggregates were counted once at trace build.
	res.Instructions = ann.Counts.Instructions
	res.LaneWork = ann.Counts.LaneWork
	res.Mispredicts = ann.Counts.Mispredicts
	res.ClassOps = ann.Counts.ClassOps
	res.ClassLanes = ann.Counts.ClassLanes
	if res.Instructions > 0 {
		res.Cycles = lastCommit + 1
	}
	res.L1 = ann.L1
	res.L2 = ann.L2
	res.L3 = ann.L3
	res.MemReads = ann.MemReads
	res.MemWrites = ann.MemWrites
	return res
}

// Core bundles a configuration with a cache hierarchy for single-shot
// stream simulation (annotate + timing in one call). The node simulator
// uses Annotate/RunTiming directly to reuse annotations across replays.
type Core struct {
	cfg  Config
	hier *cache.Hierarchy
	seed uint64

	// BranchMispredictRate is the probability a branch flushes the pipeline
	// (an application property; the paper derives it from the traced
	// binary).
	BranchMispredictRate float64
}

// New builds a core bound to a cache hierarchy; it panics on invalid
// configuration.
func New(cfg Config, hier *cache.Hierarchy, seed uint64) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Core{cfg: cfg, hier: hier, seed: seed}
}

// Config returns the core configuration.
func (c *Core) Config() Config { return c.cfg }

// Run annotates the stream against the core's hierarchy and replays it
// through the timing model. Memory latency comes from the hierarchy's
// configured MemLatencyCycle.
func (c *Core) Run(stream isa.Stream) Result {
	ann := Annotate(stream, c.hier, c.BranchMispredictRate, c.seed, 0)
	h := c.hier.Config()
	lat := LevelLatencies{
		L1:  int64(h.L1.LatencyCycle),
		L2:  int64(h.L2.LatencyCycle),
		L3:  int64(h.L3.LatencyCycle),
		Mem: int64(h.L3.LatencyCycle + h.MemLatencyCycle),
	}
	return RunTiming(c.cfg, ann, lat)
}
