package cpu

import (
	"musa/internal/cache"
	"musa/internal/isa"
	"musa/internal/xrand"
)

// The annotated trace is stored struct-of-arrays: producer distances in two
// int32 columns and everything else — class, lanes, cache level, flags —
// packed into one uint32 meta word per instruction. Cache behavior is
// independent of core timing and memory latency, so an annotated trace can
// be replayed through the timing model many times — across the
// bandwidth-contention fixed point and across core/frequency configurations
// that share the same cache configuration — without re-simulating the cache
// hierarchy. This mirrors MUSA's split between trace generation and timing
// simulation and is what makes the 864-point sweep cheap; the columnar
// layout keeps the replay loop streaming three dense arrays instead of
// loading 12-byte structs.

// Meta word layout. Level holds a cache.Level for memory ops (0 otherwise);
// Flags is the FlagMispredict bit set.
const (
	MetaLanesShift = 8
	MetaLevelShift = 16
	MetaFlagsShift = 24
)

// PackMeta builds one meta word. The FlagFP bit is derived from the class
// here so the timing loop tests one precomputed bit instead of a class-range
// comparison per instruction.
func PackMeta(class isa.Class, lanes, level, flags uint8) uint32 {
	if class >= isa.FPAdd && class <= isa.FPFMA {
		flags |= FlagFP
	}
	return uint32(class) | uint32(lanes)<<MetaLanesShift |
		uint32(level)<<MetaLevelShift | uint32(flags)<<MetaFlagsShift
}

// MetaClass, MetaLanes, MetaLevel and MetaFlags unpack one meta word.
func MetaClass(m uint32) isa.Class { return isa.Class(m) }
func MetaLanes(m uint32) uint8     { return uint8(m >> MetaLanesShift) }
func MetaLevel(m uint32) uint8     { return uint8(m >> MetaLevelShift) }
func MetaFlags(m uint32) uint8     { return uint8(m >> MetaFlagsShift) }

// Flag bits in the meta word's flags byte. FlagMispredict marks a branch
// drawn as mispredicted; FlagFP marks a floating-point class (precomputed by
// PackMeta for the timing loop).
const (
	FlagMispredict = 1
	FlagFP         = 2
)

// PackDeps folds both producer distances of the instruction at position i
// into one word (Dep1 in the low half, Dep2 in the high half), resolving
// the timing model's validity conditions — a producer exists (d > 0), is
// inside the trace (d <= i) and inside the completion window (d <
// depWindow) — to zero at build time. The replay loop then tests one word
// against zero instead of three conditions per distance.
func PackDeps(i int64, d1, d2 int32) uint32 {
	var v uint32
	if d1 > 0 && int64(d1) <= i && d1 < depWindow {
		v = uint32(d1)
	}
	if d2 > 0 && int64(d2) <= i && d2 < depWindow {
		v |= uint32(d2) << 16
	}
	return v
}

// TraceCounts are the timing-independent aggregates of an annotated trace:
// pure functions of the meta column, identical for every timing replay of
// the trace, so they are counted once at build time instead of
// re-accumulated inside every RunTiming call.
type TraceCounts struct {
	Instructions int64 // dynamic ops (after fusion)
	LaneWork     int64 // total scalar elements
	Mispredicts  int64
	ClassOps     [isa.NumClasses]int64
	ClassLanes   [isa.NumClasses]int64
}

// CountMeta accumulates the trace aggregates of one meta column.
func CountMeta(meta []uint32) TraceCounts {
	var c TraceCounts
	for _, m := range meta {
		class := isa.Class(m & 0xff)
		lanes := int64(uint8(m >> MetaLanesShift))
		c.Instructions++
		c.LaneWork += lanes
		c.ClassOps[class]++
		c.ClassLanes[class] += lanes
		if m&(FlagMispredict<<MetaFlagsShift) != 0 {
			c.Mispredicts++
		}
	}
	return c
}

// AnnotateResult bundles the annotated trace (struct-of-arrays: Deps and
// Meta are parallel columns, one entry per fused instruction) with the
// trace aggregates and the cache statistics of the measured window. Columns
// may be shared between results (a fused trace overlaid with different
// cache levels aliases its dependence column), so they must be treated as
// immutable.
type AnnotateResult struct {
	Deps                []uint32 // PackDeps words
	Meta                []uint32
	Counts              TraceCounts
	L1, L2, L3          cache.Stats
	MemReads, MemWrites int64
}

// Len returns the annotated instruction count.
func (a *AnnotateResult) Len() int { return len(a.Meta) }

// Annotate resolves the cache level of every memory access in the stream
// and pre-draws branch misprediction outcomes. The hierarchy should already
// be warm (see Warm); its statistics are reset at the start of annotation so
// the returned stats cover exactly the annotated window. sizeHint, when
// positive, preallocates the columns (an upper bound is fine — the caller
// usually knows the scalar budget the stream was built from, and fusion only
// shrinks it).
func Annotate(stream isa.Stream, hier *cache.Hierarchy, mispredictRate float64, seed uint64, sizeHint int) AnnotateResult {
	hier.ResetStats()
	rng := xrand.New(seed)
	if sizeHint < 0 {
		sizeHint = 0
	}
	deps := make([]uint32, 0, sizeHint)
	meta := make([]uint32, 0, sizeHint)
	for {
		in, ok := stream.Next()
		if !ok {
			break
		}
		var level, flags uint8
		if in.Class.IsMem() {
			lvl, _ := hier.Access(in.Addr, int(in.Size), in.Class == isa.Store)
			level = uint8(lvl)
		}
		if in.Class == isa.Branch && mispredictRate > 0 && rng.Bernoulli(mispredictRate) {
			flags |= FlagMispredict
		}
		deps = append(deps, PackDeps(int64(len(meta)), in.Dep1, in.Dep2))
		meta = append(meta, PackMeta(in.Class, in.Lanes, level, flags))
	}
	return AnnotateResult{
		Deps: deps, Meta: meta,
		Counts:    CountMeta(meta),
		L1:        hier.L1Stats(),
		L2:        hier.L2Stats(),
		L3:        hier.L3Stats(),
		MemReads:  hier.MemReads,
		MemWrites: hier.MemWrites,
	}
}

// Warm streams instructions through the hierarchy to populate cache contents
// without recording anything.
func Warm(stream isa.Stream, hier *cache.Hierarchy) {
	for {
		in, ok := stream.Next()
		if !ok {
			return
		}
		if in.Class.IsMem() {
			hier.Access(in.Addr, int(in.Size), in.Class == isa.Store)
		}
	}
}

// LevelLatencies gives the load-to-use latency in core cycles per hierarchy
// level. Mem must include the L3 lookup cost.
type LevelLatencies struct {
	L1, L2, L3, Mem int64
}

// Latency returns the latency for a cache.Level value.
func (l LevelLatencies) Latency(level uint8) int64 {
	switch cache.Level(level) {
	case cache.LevelL1:
		return l.L1
	case cache.LevelL2:
		return l.L2
	case cache.LevelL3:
		return l.L3
	case cache.LevelMem:
		return l.Mem
	}
	return l.L1
}

// table expands the latencies into a direct-indexed array over cache.Level
// values (level 0, "not a memory op", maps to L1 like Latency does).
func (l LevelLatencies) table() [cache.LevelMem + 1]int64 {
	return [cache.LevelMem + 1]int64{l.L1, l.L1, l.L2, l.L3, l.Mem}
}

// LatenciesFor derives the level latencies from a hierarchy configuration
// and an effective memory latency in nanoseconds at the given clock.
func LatenciesFor(h cache.HierarchyConfig, memLatNs, freqGHz float64) LevelLatencies {
	memCycles := int64(memLatNs * freqGHz)
	return LevelLatencies{
		L1:  int64(h.L1.LatencyCycle),
		L2:  int64(h.L2.LatencyCycle),
		L3:  int64(h.L3.LatencyCycle),
		Mem: int64(h.L3.LatencyCycle) + memCycles,
	}
}
