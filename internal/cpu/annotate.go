package cpu

import (
	"musa/internal/cache"
	"musa/internal/isa"
	"musa/internal/xrand"
)

// Annotated is one instruction with its cache behavior resolved. Cache
// behavior is independent of core timing and memory latency, so an annotated
// trace can be replayed through the timing model many times — across the
// bandwidth-contention fixed point and across core/frequency configurations
// that share the same cache configuration — without re-simulating the cache
// hierarchy. This mirrors MUSA's split between trace generation and timing
// simulation and is what makes the 864-point sweep cheap.
type Annotated struct {
	Dep1, Dep2 int32
	Class      isa.Class
	Lanes      uint8
	Level      uint8 // cache.Level for memory ops; 0 otherwise
	Flags      uint8 // bit 0: branch mispredict
}

// Flag bits in Annotated.Flags.
const FlagMispredict = 1

// AnnotateResult bundles the annotated trace with the cache statistics of
// the measured window.
type AnnotateResult struct {
	Instrs              []Annotated
	L1, L2, L3          cache.Stats
	MemReads, MemWrites int64
}

// Annotate resolves the cache level of every memory access in the stream
// and pre-draws branch misprediction outcomes. The hierarchy should already
// be warm (see Warm); its statistics are reset at the start of annotation so
// the returned stats cover exactly the annotated window.
func Annotate(stream isa.Stream, hier *cache.Hierarchy, mispredictRate float64, seed uint64) AnnotateResult {
	hier.ResetStats()
	rng := xrand.New(seed)
	var out []Annotated
	for {
		in, ok := stream.Next()
		if !ok {
			break
		}
		a := Annotated{
			Dep1:  in.Dep1,
			Dep2:  in.Dep2,
			Class: in.Class,
			Lanes: in.Lanes,
		}
		if in.Class.IsMem() {
			lvl, _ := hier.Access(in.Addr, int(in.Size), in.Class == isa.Store)
			a.Level = uint8(lvl)
		}
		if in.Class == isa.Branch && mispredictRate > 0 && rng.Bernoulli(mispredictRate) {
			a.Flags |= FlagMispredict
		}
		out = append(out, a)
	}
	return AnnotateResult{
		Instrs:    out,
		L1:        hier.L1Stats(),
		L2:        hier.L2Stats(),
		L3:        hier.L3Stats(),
		MemReads:  hier.MemReads,
		MemWrites: hier.MemWrites,
	}
}

// Warm streams instructions through the hierarchy to populate cache contents
// without recording anything.
func Warm(stream isa.Stream, hier *cache.Hierarchy) {
	for {
		in, ok := stream.Next()
		if !ok {
			return
		}
		if in.Class.IsMem() {
			hier.Access(in.Addr, int(in.Size), in.Class == isa.Store)
		}
	}
}

// LevelLatencies gives the load-to-use latency in core cycles per hierarchy
// level. Mem must include the L3 lookup cost.
type LevelLatencies struct {
	L1, L2, L3, Mem int64
}

// Latency returns the latency for a cache.Level value.
func (l LevelLatencies) Latency(level uint8) int64 {
	switch cache.Level(level) {
	case cache.LevelL1:
		return l.L1
	case cache.LevelL2:
		return l.L2
	case cache.LevelL3:
		return l.L3
	case cache.LevelMem:
		return l.Mem
	}
	return l.L1
}

// LatenciesFor derives the level latencies from a hierarchy configuration
// and an effective memory latency in nanoseconds at the given clock.
func LatenciesFor(h cache.HierarchyConfig, memLatNs, freqGHz float64) LevelLatencies {
	memCycles := int64(memLatNs * freqGHz)
	return LevelLatencies{
		L1:  int64(h.L1.LatencyCycle),
		L2:  int64(h.L2.LatencyCycle),
		L3:  int64(h.L3.LatencyCycle),
		Mem: int64(h.L3.LatencyCycle) + memCycles,
	}
}
