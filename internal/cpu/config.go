// Package cpu implements the trace-driven out-of-order core model of the
// node simulator (the TaskSim substitute). It consumes an instruction
// stream (already width-fused by the isa package), tracks the principal
// out-of-order structures from Table I of the paper — reorder buffer, issue
// and commit width, store buffer, ALU/FPU ports and register files — and
// produces cycle counts plus the activity statistics the power model needs.
//
// The model is a one-pass "time algebra" scheduler (in the spirit of
// interval simulation): every instruction is processed once, computing its
// dispatch, issue and completion cycles from structural and data
// dependencies. This is O(1) per instruction, which is what makes the
// 864-configuration sweep tractable, while still being mechanistic: ROB
// size limits memory-level parallelism, issue width limits throughput,
// port counts serialize bursts, and the store buffer back-pressures stores.
package cpu

import "fmt"

// Config describes one core microarchitecture (Table I of the paper).
type Config struct {
	Name        string
	ROB         int // reorder buffer entries
	IssueWidth  int // dispatch/issue/commit width
	StoreBuffer int
	ALUs        int // integer/branch ports
	FPUs        int // floating-point ports
	IntRF       int // integer rename registers beyond architectural state
	FPRF        int // floating-point rename registers
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.ROB <= 0 || c.IssueWidth <= 0 || c.StoreBuffer <= 0 {
		return fmt.Errorf("cpu %s: non-positive ROB/width/store buffer", c.Name)
	}
	if c.ALUs <= 0 || c.FPUs <= 0 {
		return fmt.Errorf("cpu %s: non-positive port counts", c.Name)
	}
	if c.IntRF <= 0 || c.FPRF <= 0 {
		return fmt.Errorf("cpu %s: non-positive register files", c.Name)
	}
	return nil
}

// The four core types explored in the paper (Table I).

// LowEnd is the modest, close to in-order, low-power core.
func LowEnd() Config {
	return Config{Name: "lowend", ROB: 40, IssueWidth: 2, StoreBuffer: 20, ALUs: 1, FPUs: 3, IntRF: 30, FPRF: 50}
}

// Medium is the smaller server-class core.
func Medium() Config {
	return Config{Name: "medium", ROB: 180, IssueWidth: 4, StoreBuffer: 100, ALUs: 3, FPUs: 3, IntRF: 130, FPRF: 70}
}

// High is the larger server-class core.
func High() Config {
	return Config{Name: "high", ROB: 224, IssueWidth: 6, StoreBuffer: 120, ALUs: 4, FPUs: 3, IntRF: 180, FPRF: 100}
}

// Aggressive is the high-end eight-wide configuration.
func Aggressive() Config {
	return Config{Name: "aggressive", ROB: 300, IssueWidth: 8, StoreBuffer: 150, ALUs: 5, FPUs: 4, IntRF: 210, FPRF: 120}
}

// ByName returns the named Table I configuration.
func ByName(name string) (Config, error) {
	switch name {
	case "lowend", "low-end":
		return LowEnd(), nil
	case "medium":
		return Medium(), nil
	case "high":
		return High(), nil
	case "aggressive":
		return Aggressive(), nil
	}
	return Config{}, fmt.Errorf("cpu: unknown core config %q", name)
}

// AllConfigs returns the four Table I cores in sweep order.
func AllConfigs() []Config {
	return []Config{LowEnd(), Medium(), High(), Aggressive()}
}
