package cpu

import (
	"testing"

	"musa/internal/cache"
	"musa/internal/isa"
)

func testHier() *cache.Hierarchy {
	return cache.NewHierarchy(cache.HierarchyConfig{
		L1:              cache.Config{Name: "L1", SizeBytes: 32 * 1024, Assoc: 8, LatencyCycle: 4},
		L2:              cache.Config{Name: "L2", SizeBytes: 256 * 1024, Assoc: 8, LatencyCycle: 9},
		L3:              cache.Config{Name: "L3", SizeBytes: 1 << 20, Assoc: 16, LatencyCycle: 68},
		MemLatencyCycle: 200,
	})
}

func run(cfg Config, ins []isa.Instr) Result {
	c := New(cfg, testHier(), 1)
	return c.Run(isa.NewSliceStream(ins))
}

func repeatInstr(in isa.Instr, n int) []isa.Instr {
	out := make([]isa.Instr, n)
	for i := range out {
		out[i] = in
		out[i].Lanes = 1
	}
	return out
}

func TestConfigsValid(t *testing.T) {
	for _, cfg := range AllConfigs() {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	if _, err := ByName("aggressive"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
	bad := Config{Name: "bad"}
	if bad.Validate() == nil {
		t.Error("zero config validated")
	}
}

func TestEmptyStream(t *testing.T) {
	res := run(Medium(), nil)
	if res.Cycles != 0 || res.Instructions != 0 {
		t.Errorf("empty stream: %+v", res)
	}
	if res.IPC() != 0 || res.MemRequestsPerCycle() != 0 {
		t.Error("zero-division in helpers")
	}
}

func TestIndependentALUOpsReachWidth(t *testing.T) {
	// N independent single-cycle ALU ops on a W-wide core with enough ALUs
	// should approach min(width, ALUs) IPC.
	cfg := Aggressive() // width 8, ALUs 5
	res := run(cfg, repeatInstr(isa.Instr{Class: isa.IntALU}, 10000))
	want := float64(cfg.ALUs) // ports bind before width here
	if res.IPC() < want*0.9 {
		t.Errorf("IPC = %v, want ~%v", res.IPC(), want)
	}
}

func TestDependencyChainSerializes(t *testing.T) {
	// A chain of dependent 1-cycle ops must run at IPC ~1 regardless of width.
	ins := repeatInstr(isa.Instr{Class: isa.IntALU, Dep1: 1}, 5000)
	res := run(Aggressive(), ins)
	if res.IPC() > 1.05 {
		t.Errorf("dependent chain IPC = %v, want <= ~1", res.IPC())
	}
}

func TestIssueWidthLimits(t *testing.T) {
	// With abundant ports, a narrow core commits fewer ops/cycle.
	mk := func(cfg Config) float64 {
		cfg.ALUs = 8
		return run(cfg, repeatInstr(isa.Instr{Class: isa.IntALU}, 8000)).IPC()
	}
	low, high := mk(LowEnd()), mk(Aggressive())
	if low > float64(LowEnd().IssueWidth)+0.05 {
		t.Errorf("low-end IPC %v exceeds its width", low)
	}
	if high <= low {
		t.Errorf("aggressive IPC %v <= low-end %v", high, low)
	}
}

func TestFPPortContention(t *testing.T) {
	// Independent FP adds: throughput limited by FPU count on a wide core.
	cfg := Aggressive()
	cfg.FPUs = 2
	res := run(cfg, repeatInstr(isa.Instr{Class: isa.FPAdd}, 8000))
	if res.IPC() > 2.1 {
		t.Errorf("FP IPC = %v with 2 FPUs", res.IPC())
	}
}

func TestFPDivUnpipelined(t *testing.T) {
	cfg := Medium()
	res := run(cfg, repeatInstr(isa.Instr{Class: isa.FPDiv}, 1000))
	// 3 FPUs, occupancy 16 -> at most 3/16 IPC.
	if res.IPC() > 3.0/16.0*1.1 {
		t.Errorf("div IPC = %v, want <= ~%v", res.IPC(), 3.0/16.0)
	}
}

func TestROBLimitsMLP(t *testing.T) {
	// Independent loads that all miss to memory: a large ROB overlaps many
	// more misses than a small one. This is the core mechanism behind the
	// paper's Fig. 7 (Specfem3D 60% slower on low-end cores).
	mkLoads := func(n int) []isa.Instr {
		ins := make([]isa.Instr, n)
		for i := range ins {
			// Each load touches a new line far apart: always memory misses.
			ins[i] = isa.Instr{Class: isa.Load, Addr: uint64(i) * 4096, Size: 8, Lanes: 1}
		}
		return ins
	}
	small := run(LowEnd(), mkLoads(4000))
	big := run(Aggressive(), mkLoads(4000))
	speedup := float64(small.Cycles) / float64(big.Cycles)
	if speedup < 2 {
		t.Errorf("aggressive/low-end speedup on miss streams = %v, want > 2", speedup)
	}
}

func TestStoreBufferBackpressure(t *testing.T) {
	// Stores that miss to memory drain slowly; a tiny store buffer stalls.
	mkStores := func(n int) []isa.Instr {
		ins := make([]isa.Instr, n)
		for i := range ins {
			ins[i] = isa.Instr{Class: isa.Store, Addr: uint64(i) * 4096, Size: 8, Lanes: 1}
		}
		return ins
	}
	cfg := Medium()
	cfg.StoreBuffer = 2
	slow := run(cfg, mkStores(3000))
	fast := run(Medium(), mkStores(3000))
	if slow.Cycles <= fast.Cycles {
		t.Errorf("tiny store buffer not slower: %d vs %d", slow.Cycles, fast.Cycles)
	}
	if slow.StallSB == 0 {
		t.Error("no SB stalls recorded")
	}
}

func TestMispredictsSlowDown(t *testing.T) {
	ins := repeatInstr(isa.Instr{Class: isa.Branch}, 5000)
	hier1 := testHier()
	c1 := New(Medium(), hier1, 7)
	base := c1.Run(isa.NewSliceStream(ins))
	hier2 := testHier()
	c2 := New(Medium(), hier2, 7)
	c2.BranchMispredictRate = 0.05
	bad := c2.Run(isa.NewSliceStream(ins))
	if bad.Mispredicts == 0 {
		t.Fatal("no mispredicts at 5% rate")
	}
	if bad.Cycles <= base.Cycles {
		t.Errorf("mispredicts did not slow execution: %d vs %d", bad.Cycles, base.Cycles)
	}
}

func TestCacheStatsPropagate(t *testing.T) {
	ins := make([]isa.Instr, 2000)
	for i := range ins {
		ins[i] = isa.Instr{Class: isa.Load, Addr: uint64(i%8) * 64, Size: 8, Lanes: 1}
	}
	res := run(Medium(), ins)
	if res.L1.Accesses != 2000 {
		t.Errorf("L1 accesses = %d", res.L1.Accesses)
	}
	if res.L1.Misses != 8 {
		t.Errorf("L1 misses = %d, want 8 cold", res.L1.Misses)
	}
	// The stream prefetcher may fetch a few lines beyond the 8 hot ones.
	if res.MemReads < 8 || res.MemReads > 20 {
		t.Errorf("MemReads = %d, want 8 demand lines (+ bounded prefetch)", res.MemReads)
	}
}

func TestHotLoadsFasterThanMissingLoads(t *testing.T) {
	hot := make([]isa.Instr, 3000)
	for i := range hot {
		hot[i] = isa.Instr{Class: isa.Load, Addr: uint64(i%4) * 64, Size: 8, Lanes: 1, Dep1: 1}
	}
	cold := make([]isa.Instr, 3000)
	for i := range cold {
		cold[i] = isa.Instr{Class: isa.Load, Addr: uint64(i) * 4096, Size: 8, Lanes: 1, Dep1: 1}
	}
	rh := run(Medium(), hot)
	rc := run(Medium(), cold)
	if rc.Cycles < rh.Cycles*10 {
		t.Errorf("dependent missing loads (%d cyc) not much slower than hot (%d cyc)", rc.Cycles, rh.Cycles)
	}
}

func TestLaneWorkCountsFusion(t *testing.T) {
	ins := []isa.Instr{
		{Class: isa.FPAdd, Lanes: 8},
		{Class: isa.FPAdd, Lanes: 1},
	}
	res := run(Medium(), ins)
	if res.LaneWork != 9 {
		t.Errorf("LaneWork = %d, want 9", res.LaneWork)
	}
	if res.Instructions != 2 {
		t.Errorf("Instructions = %d, want 2", res.Instructions)
	}
}

func TestFusedStreamFasterThanScalar(t *testing.T) {
	// The end-to-end vector win: the same loop at 512-bit fused vs scalar.
	mkLoop := func(width int) Result {
		var raw []isa.Instr
		for i := 0; i < 2000; i++ {
			raw = append(raw,
				isa.Instr{PC: 1, BB: 1, Class: isa.FPMul, Lanes: 1, Vectorizable: true},
				isa.Instr{PC: 2, BB: 1, Class: isa.Load, Addr: uint64(i * 8), Size: 8, Lanes: 1, Vectorizable: true},
				isa.Instr{PC: 3, BB: 1, Class: isa.IntALU, Lanes: 1},
			)
		}
		fu := isa.NewFuser(isa.NewSliceStream(raw), isa.DefaultFuserConfig(width))
		c := New(Medium(), testHier(), 3)
		return c.Run(fu)
	}
	scalar := mkLoop(64)
	wide := mkLoop(512)
	if wide.Cycles >= scalar.Cycles {
		t.Errorf("512-bit (%d cyc) not faster than scalar (%d cyc)", wide.Cycles, scalar.Cycles)
	}
	if wide.LaneWork != scalar.LaneWork {
		t.Errorf("lane work differs: %d vs %d", wide.LaneWork, scalar.LaneWork)
	}
}

func TestOoOConfigOrdering(t *testing.T) {
	// On a mixed workload with memory misses, the Table I cores must order
	// lowend <= medium <= high <= aggressive in performance.
	var ins []isa.Instr
	for i := 0; i < 6000; i++ {
		ins = append(ins,
			isa.Instr{Class: isa.Load, Addr: uint64(i) * 512, Size: 8, Lanes: 1},
			isa.Instr{Class: isa.FPAdd, Dep1: 1, Lanes: 1},
			isa.Instr{Class: isa.IntALU, Lanes: 1},
			isa.Instr{Class: isa.FPMul, Dep1: 2, Lanes: 1},
		)
	}
	var prev int64 = 1 << 62
	for _, cfg := range AllConfigs() {
		res := run(cfg, ins)
		if res.Cycles > prev+prev/20 { // allow 5% noise
			t.Errorf("%s slower than previous config: %d > %d", cfg.Name, res.Cycles, prev)
		}
		prev = res.Cycles
	}
}

func BenchmarkCoreALUStream(b *testing.B) {
	ins := repeatInstr(isa.Instr{Class: isa.IntALU}, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New(Medium(), testHier(), 1)
		c.Run(isa.NewSliceStream(ins))
	}
}

func BenchmarkCoreMemStream(b *testing.B) {
	ins := make([]isa.Instr, 10000)
	for i := range ins {
		ins[i] = isa.Instr{Class: isa.Load, Addr: uint64(i) * 256, Size: 8, Lanes: 1}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New(Medium(), testHier(), 1)
		c.Run(isa.NewSliceStream(ins))
	}
}
