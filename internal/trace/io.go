package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"musa/internal/isa"
)

// WriteBurst serializes a burst trace as JSON.
func WriteBurst(w io.Writer, b *Burst) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(b)
}

// ReadBurst parses and validates a JSON burst trace.
func ReadBurst(r io.Reader) (*Burst, error) {
	var b Burst
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("trace: decoding burst: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}

// Detailed is an instruction-level trace of one sampled region.
type Detailed struct {
	App    string
	Region string
	Rank   int
	Instrs []isa.Instr
}

// detailedMagic identifies the binary detailed-trace format, versioned in
// the last byte.
var detailedMagic = [8]byte{'M', 'U', 'S', 'A', 'D', 'T', 'R', 1}

// WriteDetailed serializes a detailed trace in the compact binary format.
func WriteDetailed(w io.Writer, d *Detailed) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(detailedMagic[:]); err != nil {
		return err
	}
	writeString := func(s string) error {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := writeString(d.App); err != nil {
		return err
	}
	if err := writeString(d.Region); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(d.Rank)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(d.Instrs))); err != nil {
		return err
	}
	for i := range d.Instrs {
		if err := writeInstr(bw, &d.Instrs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeInstr(w io.Writer, in *isa.Instr) error {
	var buf [32]byte
	binary.LittleEndian.PutUint64(buf[0:], in.Addr)
	binary.LittleEndian.PutUint32(buf[8:], in.PC)
	binary.LittleEndian.PutUint32(buf[12:], in.BB)
	binary.LittleEndian.PutUint32(buf[16:], uint32(in.Dep1))
	binary.LittleEndian.PutUint32(buf[20:], uint32(in.Dep2))
	binary.LittleEndian.PutUint16(buf[24:], in.Size)
	buf[26] = byte(in.Class)
	buf[27] = in.Lanes
	if in.Vectorizable {
		buf[28] = 1
	}
	_, err := w.Write(buf[:])
	return err
}

func readInstr(r io.Reader, in *isa.Instr) error {
	var buf [32]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return err
	}
	in.Addr = binary.LittleEndian.Uint64(buf[0:])
	in.PC = binary.LittleEndian.Uint32(buf[8:])
	in.BB = binary.LittleEndian.Uint32(buf[12:])
	in.Dep1 = int32(binary.LittleEndian.Uint32(buf[16:]))
	in.Dep2 = int32(binary.LittleEndian.Uint32(buf[20:]))
	in.Size = binary.LittleEndian.Uint16(buf[24:])
	in.Class = isa.Class(buf[26])
	in.Lanes = buf[27]
	in.Vectorizable = buf[28] == 1
	return nil
}

// ReadDetailed parses a binary detailed trace.
func ReadDetailed(r io.Reader) (*Detailed, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != detailedMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	readString := func() (string, error) {
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("trace: string length %d too large", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	var d Detailed
	var err error
	if d.App, err = readString(); err != nil {
		return nil, err
	}
	if d.Region, err = readString(); err != nil {
		return nil, err
	}
	var rank int64
	if err := binary.Read(br, binary.LittleEndian, &rank); err != nil {
		return nil, err
	}
	d.Rank = int(rank)
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<32 {
		return nil, fmt.Errorf("trace: instruction count %d too large", n)
	}
	d.Instrs = make([]isa.Instr, n)
	for i := range d.Instrs {
		if err := readInstr(br, &d.Instrs[i]); err != nil {
			return nil, fmt.Errorf("trace: instr %d: %w", i, err)
		}
	}
	return &d, nil
}
