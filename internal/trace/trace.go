// Package trace defines MUSA's multi-level traces. A burst trace captures
// the whole execution of every MPI rank at coarse grain: compute regions
// (with their runtime-system task graphs, so the region can be re-simulated
// at any core count) interleaved with MPI communication events. A detailed
// trace is the instruction-level record of one sampled compute region of one
// rank (the paper traces one iteration of one rank with DynamoRIO).
//
// Both levels serialize: burst traces as JSON (they are small and human-
// inspectable, like Extrae's), detailed traces in a compact little-endian
// binary format (they are large).
package trace

import (
	"fmt"

	"musa/internal/rts"
)

// EventKind discriminates burst-trace events.
type EventKind uint8

// Burst event kinds.
const (
	EvCompute EventKind = iota
	EvSend
	EvRecv
	EvAllReduce
	EvBarrier
	EvBcast
	// EvSendRecv is a combined exchange (MPI_Sendrecv / pre-posted
	// MPI_Irecv): the receive from RecvPeer is posted when the event is
	// entered, concurrently with the send to Peer, and the event completes
	// when both halves do. Halo exchanges use it so blocking rendezvous
	// sends cannot deadlock on exchange ordering.
	EvSendRecv
	numEventKinds
)

var kindNames = [numEventKinds]string{"compute", "send", "recv", "allreduce", "barrier", "bcast", "sendrecv"}

func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsMPI reports whether the event is a communication event.
func (k EventKind) IsMPI() bool { return k != EvCompute }

// IsCollective reports whether the event synchronizes all ranks.
func (k EventKind) IsCollective() bool {
	return k == EvAllReduce || k == EvBarrier || k == EvBcast
}

// Event is one burst-trace event of one rank.
type Event struct {
	Kind EventKind `json:"kind"`
	// RegionID indexes Burst.Regions for EvCompute events.
	RegionID int `json:"region,omitempty"`
	// DurationNs is the traced duration for compute events (burst timing,
	// replaced by simulation results in detailed mode).
	DurationNs float64 `json:"dur_ns,omitempty"`
	// Peer is the partner rank for point-to-point events (the send
	// destination for EvSendRecv).
	Peer int `json:"peer,omitempty"`
	// RecvPeer is the receive source of an EvSendRecv exchange.
	RecvPeer int `json:"recv_peer,omitempty"`
	// Bytes is the message (or collective contribution) size.
	Bytes int64 `json:"bytes,omitempty"`
}

// RegionInfo describes one compute region: its runtime-system task graph
// (the runtime events MUSA records so regions can be re-simulated with any
// number of cores) and the instruction footprint used to rescale durations
// in detailed mode.
type RegionInfo struct {
	Name string `json:"name"`
	// Graph is the task graph replayed by the rts simulator.
	Graph rts.Region `json:"graph"`
	// Instructions is the dynamic scalar instruction count of the region
	// (one rank), used to map core-model IPC into task durations.
	Instructions int64 `json:"instructions"`
}

// RankTrace is the event sequence of one MPI rank.
type RankTrace struct {
	Rank   int     `json:"rank"`
	Events []Event `json:"events"`
}

// Burst is a whole-application coarse-grain trace.
type Burst struct {
	App     string       `json:"app"`
	Ranks   []RankTrace  `json:"ranks"`
	Regions []RegionInfo `json:"regions"`
}

// Validate checks structural invariants.
func (b *Burst) Validate() error {
	if len(b.Ranks) == 0 {
		return fmt.Errorf("trace: burst %q has no ranks", b.App)
	}
	for i, rt := range b.Ranks {
		if rt.Rank != i {
			return fmt.Errorf("trace: rank %d stored at index %d", rt.Rank, i)
		}
		for j, ev := range rt.Events {
			switch {
			case ev.Kind >= numEventKinds:
				return fmt.Errorf("trace: rank %d event %d has kind %d", i, j, ev.Kind)
			case ev.Kind == EvCompute:
				if ev.RegionID < 0 || ev.RegionID >= len(b.Regions) {
					return fmt.Errorf("trace: rank %d event %d region %d out of range", i, j, ev.RegionID)
				}
				if ev.DurationNs < 0 {
					return fmt.Errorf("trace: rank %d event %d negative duration", i, j)
				}
			case ev.Kind == EvSend || ev.Kind == EvRecv:
				if ev.Peer < 0 || ev.Peer >= len(b.Ranks) || ev.Peer == i {
					return fmt.Errorf("trace: rank %d event %d bad peer %d", i, j, ev.Peer)
				}
				if ev.Bytes <= 0 {
					return fmt.Errorf("trace: rank %d event %d p2p with %d bytes", i, j, ev.Bytes)
				}
			case ev.Kind == EvSendRecv:
				if ev.Peer < 0 || ev.Peer >= len(b.Ranks) || ev.Peer == i {
					return fmt.Errorf("trace: rank %d event %d bad peer %d", i, j, ev.Peer)
				}
				if ev.RecvPeer < 0 || ev.RecvPeer >= len(b.Ranks) || ev.RecvPeer == i {
					return fmt.Errorf("trace: rank %d event %d bad recv peer %d", i, j, ev.RecvPeer)
				}
				if ev.Bytes <= 0 {
					return fmt.Errorf("trace: rank %d event %d p2p with %d bytes", i, j, ev.Bytes)
				}
			}
		}
	}
	for ri, reg := range b.Regions {
		if err := reg.Graph.Validate(); err != nil {
			return fmt.Errorf("trace: region %d: %w", ri, err)
		}
	}
	return nil
}

// Stats summarizes a burst trace.
type Stats struct {
	Ranks       int
	Events      int
	ComputeNs   float64 // total traced compute time across ranks
	P2PMessages int
	P2PBytes    int64
	Collectives int
	Regions     int
}

// Summarize computes trace statistics.
func (b *Burst) Summarize() Stats {
	s := Stats{Ranks: len(b.Ranks), Regions: len(b.Regions)}
	for _, rt := range b.Ranks {
		s.Events += len(rt.Events)
		for _, ev := range rt.Events {
			switch {
			case ev.Kind == EvCompute:
				s.ComputeNs += ev.DurationNs
			case ev.Kind == EvSend, ev.Kind == EvSendRecv:
				s.P2PMessages++
				s.P2PBytes += ev.Bytes
			case ev.Kind.IsCollective():
				s.Collectives++
			}
		}
	}
	return s
}
