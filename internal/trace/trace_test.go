package trace

import (
	"bytes"
	"reflect"
	"testing"

	"musa/internal/isa"
	"musa/internal/rts"
)

func sampleBurst() *Burst {
	region := RegionInfo{
		Name: "solver",
		Graph: rts.Region{
			Name: "solver",
			Tasks: []rts.Task{
				{ID: 0, DurationNs: 100},
				{ID: 1, DurationNs: 120, Deps: []int{0}},
			},
		},
		Instructions: 100000,
	}
	b := &Burst{App: "toy", Regions: []RegionInfo{region}}
	for r := 0; r < 2; r++ {
		peer := 1 - r
		b.Ranks = append(b.Ranks, RankTrace{
			Rank: r,
			Events: []Event{
				{Kind: EvCompute, RegionID: 0, DurationNs: 220},
				{Kind: EvSend, Peer: peer, Bytes: 4096},
				{Kind: EvRecv, Peer: peer, Bytes: 4096},
				{Kind: EvAllReduce, Bytes: 64},
			},
		})
	}
	return b
}

func TestValidateOK(t *testing.T) {
	if err := sampleBurst().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []func(*Burst){
		func(b *Burst) { b.Ranks = nil },
		func(b *Burst) { b.Ranks[0].Rank = 5 },
		func(b *Burst) { b.Ranks[0].Events[0].RegionID = 9 },
		func(b *Burst) { b.Ranks[0].Events[0].DurationNs = -1 },
		func(b *Burst) { b.Ranks[0].Events[1].Peer = 0 }, // self-send
		func(b *Burst) { b.Ranks[0].Events[1].Bytes = 0 },
		func(b *Burst) { b.Regions[0].Graph.Tasks[1].Deps = []int{7} },
	}
	for i, mutate := range cases {
		b := sampleBurst()
		mutate(b)
		if err := b.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := sampleBurst().Summarize()
	if s.Ranks != 2 || s.Regions != 1 {
		t.Errorf("ranks/regions = %d/%d", s.Ranks, s.Regions)
	}
	if s.P2PMessages != 2 || s.P2PBytes != 8192 {
		t.Errorf("p2p = %d msgs %d bytes", s.P2PMessages, s.P2PBytes)
	}
	if s.Collectives != 2 {
		t.Errorf("collectives = %d", s.Collectives)
	}
	if s.ComputeNs != 440 {
		t.Errorf("compute = %v", s.ComputeNs)
	}
}

func TestBurstRoundTrip(t *testing.T) {
	b := sampleBurst()
	var buf bytes.Buffer
	if err := WriteBurst(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBurst(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, got) {
		t.Error("burst round trip mismatch")
	}
}

func TestReadBurstRejectsGarbage(t *testing.T) {
	if _, err := ReadBurst(bytes.NewBufferString("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := ReadBurst(bytes.NewBufferString(`{"app":"x","ranks":[]}`)); err == nil {
		t.Error("invalid burst accepted")
	}
}

func TestDetailedRoundTrip(t *testing.T) {
	d := &Detailed{
		App:    "toy",
		Region: "solver",
		Rank:   3,
		Instrs: []isa.Instr{
			{Addr: 0xdeadbeef, PC: 1, BB: 2, Dep1: 3, Dep2: -1, Size: 8, Class: isa.Load, Lanes: 2, Vectorizable: true},
			{PC: 4, BB: 2, Class: isa.Branch, Lanes: 1},
			{PC: 5, BB: 3, Class: isa.FPFMA, Lanes: 8, Vectorizable: true},
		},
	}
	var buf bytes.Buffer
	if err := WriteDetailed(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDetailed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, got) {
		t.Errorf("detailed round trip mismatch:\n%+v\n%+v", d, got)
	}
}

func TestDetailedRejectsBadMagic(t *testing.T) {
	if _, err := ReadDetailed(bytes.NewBufferString("NOTMUSA!xxxxxxxxxxx")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadDetailed(bytes.NewBuffer(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestDetailedTruncation(t *testing.T) {
	d := &Detailed{App: "a", Region: "r", Instrs: make([]isa.Instr, 100)}
	var buf bytes.Buffer
	if err := WriteDetailed(&buf, d); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-16]
	if _, err := ReadDetailed(bytes.NewBuffer(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d unprintable", k)
		}
	}
	if !EvSend.IsMPI() || EvCompute.IsMPI() {
		t.Error("IsMPI wrong")
	}
	if !EvBarrier.IsCollective() || EvSend.IsCollective() {
		t.Error("IsCollective wrong")
	}
}
