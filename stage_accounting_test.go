package musa_test

import (
	"context"
	"testing"

	"musa"
	"musa/internal/apps"
	"musa/internal/dse"
)

// stageDeltas snapshots the observation counts of every dse pipeline stage
// and returns a function that reports how many observations each stage
// gained since the snapshot. Stage observations fire only on real builds —
// run-front, artifact-cache and ring-peer hits leave them untouched — so
// the deltas count exactly the sub-results that were computed.
func stageDeltas() func() map[string]uint64 {
	stages := []string{
		dse.StageFuse, dse.StageAnnotate, dse.StageLatencyFit,
		dse.StageBurstSynthesis, dse.StageNodeSim, dse.StageReplay,
	}
	before := map[string]uint64{}
	for _, s := range stages {
		before[s] = stageObservations(s)
	}
	return func() map[string]uint64 {
		d := map[string]uint64{}
		for _, s := range stages {
			d[s] = stageObservations(s) - before[s]
		}
		return d
	}
}

// TestWarmStagedSweepStageAccounting is the staged sub-result contract seen
// through the stage histogram: a warm run over a primed artifact cache must
// re-derive every measurement without a single cache walk (annotate), DRAM
// curve fit (latency-fit) or burst synthesis — only the run-local fused
// traces, which are deliberately never persisted, are rebuilt, once per
// distinct (application, vector width).
func TestWarmStagedSweepStageAccounting(t *testing.T) {
	artDir := t.TempDir()
	exp := artifactTestExperiment()
	ctx := context.Background()

	vecs := map[int]bool{}
	for _, i := range exp.PointIndices {
		a, err := musa.PointArch(i)
		if err != nil {
			t.Fatal(err)
		}
		vecs[a.VectorBits] = true
	}

	prime, err := musa.NewClient(musa.ClientOptions{CacheDir: t.TempDir(), ArtifactCache: artDir})
	if err != nil {
		t.Fatal(err)
	}
	coldDelta := stageDeltas()
	if _, err := prime.Run(ctx, exp); err != nil {
		t.Fatal(err)
	}
	cold := coldDelta()
	if err := prime.Close(); err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{dse.StageAnnotate, dse.StageLatencyFit, dse.StageBurstSynthesis} {
		if cold[s] == 0 {
			t.Fatalf("cold run built no %s sub-results: %v", s, cold)
		}
	}

	warm, err := musa.NewClient(musa.ClientOptions{CacheDir: t.TempDir(), ArtifactCache: artDir})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	warmDelta := stageDeltas()
	res, err := warm.Run(ctx, exp)
	if err != nil {
		t.Fatal(err)
	}
	got := warmDelta()
	if len(res.Sweep.Measurements) != len(exp.PointIndices) {
		t.Fatalf("%d measurements, want %d", len(res.Sweep.Measurements), len(exp.PointIndices))
	}
	if got[dse.StageAnnotate] != 0 {
		t.Errorf("warm run walked the caches %d times, want 0 (hit-rate tables are staged)", got[dse.StageAnnotate])
	}
	if got[dse.StageLatencyFit] != 0 {
		t.Errorf("warm run fitted %d DRAM curves, want 0 (latency models are staged)", got[dse.StageLatencyFit])
	}
	if got[dse.StageBurstSynthesis] != 0 {
		t.Errorf("warm run synthesized %d burst traces, want 0 (bursts are staged)", got[dse.StageBurstSynthesis])
	}
	if want := uint64(len(vecs)); got[dse.StageFuse] != want {
		t.Errorf("warm run built %d fused traces, want %d (run-local, one per distinct vector width)",
			got[dse.StageFuse], want)
	}
	if got[dse.StageNodeSim] != uint64(len(exp.PointIndices)) {
		t.Errorf("warm run simulated %d points, want %d (measurements are re-derived, not replayed from the store)",
			got[dse.StageNodeSim], len(exp.PointIndices))
	}
}

// TestFullGridStageAccounting runs the complete 864-point Table I grid for
// one application at test fidelity and asserts each staged sub-result is
// computed exactly once per distinct stage key: fused traces once per
// vector width (3), hit-rate tables once per (cores, vector width, cache
// configuration) group (3*3*3 = 27), DRAM latency curves once per
// (channels, memory kind) (2*1 = 2) — while the node simulation itself
// runs once per point. This is the sharing contract of DESIGN.md §15: 864
// points, 32 sub-result builds.
func TestFullGridStageAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("full 864-point grid")
	}
	delta := stageDeltas()
	d := dse.Run(context.Background(), dse.Options{
		Apps:         []*apps.Profile{apps.LULESH()},
		SampleInstrs: 20000,
		WarmupInstrs: 40000,
		Seed:         1,
		Replay:       dse.ReplayConfig{Disable: true},
	})
	got := delta()
	if len(d.Measurements) != 864 {
		t.Fatalf("%d measurements, want 864", len(d.Measurements))
	}
	want := map[string]uint64{
		dse.StageFuse:           3,
		dse.StageAnnotate:       27,
		dse.StageLatencyFit:     2,
		dse.StageBurstSynthesis: 0,
		dse.StageNodeSim:        864,
		dse.StageReplay:         0,
	}
	for s, w := range want {
		if got[s] != w {
			t.Errorf("stage %s: %d observations, want %d", s, got[s], w)
		}
	}
}
