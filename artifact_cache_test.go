package musa_test

import (
	"context"
	"encoding/json"
	"testing"

	"musa"
)

// artifactTestExperiment is a small sweep spanning one annotation group:
// cheap enough for tests, real enough to exercise every artifact kind.
func artifactTestExperiment() musa.Experiment {
	return musa.Experiment{
		Kind: musa.KindSweep, Apps: []string{"btmz"}, PointIndices: []int{0, 1, 2},
		Sample: 20000, Warmup: 40000, Seed: 1, ReplayRanks: []int{4},
	}
}

// TestSweepColdVsWarmArtifacts is the tentpole invariant: a warm-cache run
// must be byte-identical to a cold run — same measurements (canonical
// JSON), same store keys — while rebuilding nothing. The cold client
// populates a persistent artifact directory; the warm client reuses it
// against a fresh result store, so every measurement is recomputed from
// cached artifacts.
func TestSweepColdVsWarmArtifacts(t *testing.T) {
	artDir := t.TempDir()
	exp := artifactTestExperiment()
	ctx := context.Background()

	cold, err := musa.NewClient(musa.ClientOptions{
		CacheDir: t.TempDir(), ArtifactCache: artDir, SweepWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := cold.Run(ctx, exp)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(res1.Sweep.Measurements)
	if err != nil {
		t.Fatal(err)
	}
	cs := cold.Snapshot().Artifacts.Stats
	if cs.HitRates.Misses == 0 || cs.HitRates.Puts == 0 {
		t.Fatalf("cold run did not build and persist hit-rate tables: %+v", cs)
	}
	if cs.Entries == 0 || cs.BytesWritten == 0 {
		t.Fatalf("cold run persisted nothing: %+v", cs)
	}
	if msg := cold.Snapshot().Artifacts.Err; msg != "" {
		t.Fatal(msg)
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	warm, err := musa.NewClient(musa.ClientOptions{
		CacheDir: t.TempDir(), ArtifactCache: artDir, SweepWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	res2, err := warm.Run(ctx, exp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(res2.Sweep.Measurements)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("warm dataset differs from cold:\n%s\nvs\n%s", got, want)
	}
	ws := warm.Snapshot().Artifacts.Stats
	if ws.HitRates.Misses != 0 || ws.HitRates.Hits == 0 {
		t.Fatalf("warm run rebuilt hit-rate tables: %+v", ws.HitRates)
	}
	if ws.LatencyModels.Misses != 0 || ws.Bursts.Misses != 0 {
		t.Fatalf("warm run rebuilt latency models or bursts: %+v", ws)
	}

	// Store-key identity: the warm run checkpointed its recomputed
	// measurements under the same canonical node keys, so a single-point
	// node request over a swept point is a store hit.
	i := exp.PointIndices[0]
	node, err := warm.Run(ctx, musa.Experiment{
		Kind: musa.KindNode, App: "btmz", PointIndex: &i,
		Sample: exp.Sample, Warmup: exp.Warmup, Seed: exp.Seed,
		ReplayRanks: exp.ReplayRanks,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !node.Cached {
		t.Fatal("warm-run store keys diverge from the canonical node keys")
	}
}

// TestArtifactCacheOffIsCold pins the NoArtifacts escape hatch: a client
// with the cache disabled reports zero artifact activity and still
// produces the identical dataset.
func TestArtifactCacheOffIsCold(t *testing.T) {
	exp := artifactTestExperiment()
	ctx := context.Background()

	on, err := musa.NewClient(musa.ClientOptions{SweepWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer on.Close()
	off, err := musa.NewClient(musa.ClientOptions{SweepWorkers: 2, NoArtifacts: true})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if !on.Snapshot().Artifacts.Enabled || off.Snapshot().Artifacts.Enabled {
		t.Fatal("Snapshot().Artifacts.Enabled does not reflect the options")
	}

	r1, err := on.Run(ctx, exp)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := off.Run(ctx, exp)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(r1.Sweep.Measurements)
	j2, _ := json.Marshal(r2.Sweep.Measurements)
	if string(j1) != string(j2) {
		t.Fatal("artifact cache changed the dataset")
	}
	if st := off.Snapshot().Artifacts.Stats; st != (musa.ArtifactStats{}) {
		t.Fatalf("disabled cache reports activity: %+v", st)
	}
}
