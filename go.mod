module musa

go 1.24
