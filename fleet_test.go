package musa

import (
	"reflect"
	"testing"
	"time"

	"musa/internal/apps"
	"musa/internal/dse"
)

func TestNewClientRejectsBadWorkerURLs(t *testing.T) {
	for _, bad := range []string{"", "not a url", "ftp://host:1", "http://"} {
		_, err := NewClient(ClientOptions{Workers: []string{bad}})
		if err == nil {
			t.Errorf("NewClient accepted worker URL %q", bad)
		}
	}
	c, err := NewClient(ClientOptions{Workers: []string{"http://h1:8080/", "https://h2"}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	want := []string{"http://h1:8080", "https://h2"}
	if !reflect.DeepEqual(c.fleet.bases, want) {
		t.Fatalf("normalized bases = %v, want %v", c.fleet.bases, want)
	}
	if c.fleet.timeout != defaultShardTimeout {
		t.Fatalf("default shard timeout = %v", c.fleet.timeout)
	}
}

// TestPlanShardsPartition checks the shard planner's contract: every
// remaining (app, index) unit lands in exactly one shard, shards are grouped
// by annotation signature (cores, vector width, cache, memory kind), and
// the plan is deterministic.
func TestPlanShardsPartition(t *testing.T) {
	apps := []string{"btmz", "lulesh"}
	remaining := map[string][]int{}
	for _, app := range apps {
		for i := 0; i < PointCount(); i++ {
			remaining[app] = append(remaining[app], i)
		}
	}
	keyOf := func(app string, i int) string { return app + "/" + pointLabelMust(i) }

	shards := planShards(apps, remaining, keyOf, nil)

	seen := map[string]map[int]bool{}
	for _, j := range shards {
		if len(j.indices) == 0 {
			t.Fatal("empty shard")
		}
		sig := func(i int) dse.AnnGroup {
			return tableIGrid()[i].AnnGroup()
		}
		want := sig(j.indices[0])
		for _, i := range j.indices {
			if sig(i) != want {
				t.Fatalf("shard mixes annotation groups: %v vs %v", sig(i), want)
			}
			if seen[j.app] == nil {
				seen[j.app] = map[int]bool{}
			}
			if seen[j.app][i] {
				t.Fatalf("point (%s, %d) planned twice", j.app, i)
			}
			seen[j.app][i] = true
		}
		if len(j.keys) != len(j.indices) {
			t.Fatalf("shard has %d keys for %d indices", len(j.keys), len(j.indices))
		}
	}
	for _, app := range apps {
		if len(seen[app]) != PointCount() {
			t.Fatalf("%s: planned %d of %d points", app, len(seen[app]), PointCount())
		}
	}
	// The Table I grid sweeps 3 core counts x 3 vector widths x 3 cache
	// configurations on DDR4: 27 annotation groups per application.
	if len(shards) != 27*len(apps) {
		t.Fatalf("%d shards, want %d", len(shards), 27*len(apps))
	}

	again := planShards(apps, remaining, keyOf, nil)
	if len(again) != len(shards) {
		t.Fatalf("plan not deterministic: %d vs %d shards", len(again), len(shards))
	}
	for i := range shards {
		if shards[i].app != again[i].app || !reflect.DeepEqual(shards[i].indices, again[i].indices) {
			t.Fatalf("plan not deterministic at shard %d", i)
		}
	}
}

// pointLabelMust is a test helper: PointLabel or panic.
func pointLabelMust(i int) string {
	l, err := PointLabel(i)
	if err != nil {
		panic(err)
	}
	return l
}

func TestValidateShardReply(t *testing.T) {
	remaining := map[string][]int{"btmz": {0, 1}}
	shards := planShards([]string{"btmz"}, remaining, func(string, int) string { return "k" }, nil)
	if len(shards) != 1 {
		t.Fatalf("%d shards", len(shards))
	}
	j := shards[0]
	grid := tableIGrid()
	good := []Measurement{
		{App: "btmz", Arch: grid[0]},
		{App: "btmz", Arch: grid[1]},
	}
	if err := j.validateShardReply(good); err != nil {
		t.Fatalf("valid reply rejected: %v", err)
	}
	cases := map[string][]Measurement{
		"short":     {good[0]},
		"stray app": {good[0], {App: "hydro", Arch: grid[1]}},
		"stray pt":  {good[0], {App: "btmz", Arch: grid[5]}},
		"duplicate": {good[0], good[0]},
	}
	for name, ms := range cases {
		if err := j.validateShardReply(ms); err == nil {
			t.Errorf("%s reply accepted", name)
		}
	}
}

func TestShardExperimentCarriesNormalizedFields(t *testing.T) {
	ne, err := Experiment{
		Kind: KindSweep, Apps: []string{"btmz"},
		Sample: 20000, Warmup: 40000, ReplayRanks: []int{4},
	}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	j := &shardJob{app: "btmz", indices: []int{3, 4}}
	sub := shardExperiment(ne, j)
	if sub.Seed != 1 || sub.Network != "mn4" || len(sub.ReplayRanks) != 1 {
		t.Fatalf("shard experiment lost normalized defaults: %+v", sub)
	}
	if _, err := sub.Normalize(); err != nil {
		t.Fatalf("shard experiment does not validate: %v", err)
	}
	// The shard's node keys must match the coordinator's: same fidelity,
	// seed and replay fields means nodeKey agrees for every point.
	grid := tableIGrid()
	if nodeKey(sub, "btmz", nil, archOfPoint(grid[3]), nil) !=
		nodeKey(ne, "btmz", nil, archOfPoint(grid[3]), nil) {
		t.Fatal("shard and coordinator node keys diverge")
	}

	// Implicit fidelity must be materialized to the package defaults on the
	// wire: otherwise a worker's own -sample/-warmup defaults would skew
	// shard measurements away from what the coordinator and the local pool
	// compute (and poison the coordinator's store).
	ne2, err := Experiment{Kind: KindSweep, Apps: []string{"btmz"}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	sub2 := shardExperiment(ne2, j)
	if sub2.Sample != apps.SampleSize || sub2.Warmup != 2*apps.SampleSize {
		t.Fatalf("implicit fidelity not materialized: sample=%d warmup=%d", sub2.Sample, sub2.Warmup)
	}
}

func TestFleetOptionsNormalization(t *testing.T) {
	f, err := newFleet([]string{"http://h:1"}, -1, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if f.timeout != -1 || f.hedgeAfter != 50*time.Millisecond {
		t.Fatalf("fleet knobs = %v/%v", f.timeout, f.hedgeAfter)
	}
}
