package musa_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"musa"
	"musa/internal/obs"
	"musa/internal/serve"
)

// startRingReplicas spins up n in-process musa-serve replicas that all know
// the full ring membership (including themselves) from the start: every
// listener binds before any client is built, mirroring how real deployments
// pass -self/-peers. The opts callback customizes each replica; nil gets
// sensible test defaults.
func startRingReplicas(t *testing.T, n int, opts func(i int) (musa.ClientOptions, []serve.Option)) ([]string, []*musa.Client) {
	t.Helper()
	servers := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range servers {
		servers[i] = httptest.NewUnstartedServer(nil)
		urls[i] = "http://" + servers[i].Listener.Addr().String()
	}
	clients := make([]*musa.Client, n)
	for i, ts := range servers {
		co := musa.ClientOptions{SweepWorkers: 2, MaxJobs: 2}
		var so []serve.Option
		if opts != nil {
			co, so = opts(i)
		}
		co.Ring = musa.NewRing(urls[i], urls)
		c, err := musa.NewClient(co)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		t.Cleanup(func() { c.Close() })
		ts.Config.Handler = serve.NewHandler(serve.New(c), so...)
		ts.Start()
		t.Cleanup(ts.Close)
	}
	return urls, clients
}

// counterValue reads one labeled series of a counter family from reg.
func counterValue(reg *obs.Registry, name string, labels map[string]string) float64 {
	for _, f := range reg.Snapshot() {
		if f.Name != name {
			continue
		}
	series:
		for _, s := range f.Series {
			for k, v := range labels {
				found := false
				for _, l := range s.Labels {
					if l.Name == k && l.Value == v {
						found = true
						break
					}
				}
				if !found {
					continue series
				}
			}
			return s.Value
		}
	}
	return 0
}

// stageObservations reads the observation count of one dse pipeline stage
// from the process-global registry. Tests assert on deltas, never absolute
// values, since every test in the binary shares the registry.
func stageObservations(stage string) uint64 {
	for _, f := range obs.DefaultRegistry().Snapshot() {
		if f.Name != "musa_dse_stage_seconds" {
			continue
		}
		for _, s := range f.Series {
			for _, l := range s.Labels {
				if l.Name == "stage" && l.Value == stage {
					return s.Count
				}
			}
		}
	}
	return 0
}

// TestRingSweepByteIdentical is the acceptance contract for the scaled
// serve tier: a sweep dispatched through a 3-replica ring (owner-pinned
// shards, peer artifact fetch) merges into a dataset byte-identical to the
// in-process run.
func TestRingSweepByteIdentical(t *testing.T) {
	exp := fleetTestExperiment(t)
	ctx := context.Background()

	local, err := musa.NewClient(musa.ClientOptions{SweepWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	want, err := local.Run(ctx, exp)
	if err != nil {
		t.Fatal(err)
	}

	urls, _ := startRingReplicas(t, 3, nil)
	coord, err := musa.NewClient(musa.ClientOptions{
		Workers: urls, SweepWorkers: 2, CacheDir: t.TempDir(),
		Ring: musa.NewRing("", urls), // dispatch into the ring without joining it
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	got, err := coord.Run(ctx, exp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonicalMeasurements(t, got), canonicalMeasurements(t, want)) {
		t.Fatal("ring-dispatched sweep differs from the in-process run")
	}
	st := coord.Stats()
	if int(st.Remote) != len(want.Sweep.Measurements) {
		t.Fatalf("remote = %d, want all %d measurements from replicas", st.Remote, len(want.Sweep.Measurements))
	}
	if st.Redispatched != 0 {
		t.Fatalf("redispatched = %d shards with all replicas healthy, want 0", st.Redispatched)
	}

	// Store interop: the coordinator checkpointed the merged sweep under the
	// same node keys the in-process runner writes, so re-requesting one
	// swept point is a store hit, not a simulation.
	hitsBefore := coord.Stats().StoreHits
	node := musa.Experiment{
		Kind: musa.KindNode, App: exp.Apps[0], PointIndex: &exp.PointIndices[0],
		Sample: exp.Sample, Warmup: exp.Warmup, Seed: exp.Seed, ReplayRanks: exp.ReplayRanks,
	}
	if _, err := coord.Run(ctx, node); err != nil {
		t.Fatal(err)
	}
	if coord.Stats().StoreHits != hitsBefore+1 {
		t.Fatal("swept point not served from the coordinator store under the node key")
	}
}

// TestRingSimulateCoalesces is distributed single-flight: identical
// /simulate requests hitting every replica of a 3-ring concurrently all
// converge on the key's owner, which computes the measurement exactly once.
// Non-owners account their forwards under the proxied ring counter.
func TestRingSimulateCoalesces(t *testing.T) {
	regs := make([]*obs.Registry, 3)
	urls, clients := startRingReplicas(t, 3, func(i int) (musa.ClientOptions, []serve.Option) {
		regs[i] = obs.NewRegistry()
		return musa.ClientOptions{SweepWorkers: 2, MaxJobs: 4, CacheDir: t.TempDir()},
			[]serve.Option{serve.WithRegistry(regs[i])}
	})

	body := `{"app":"btmz","pointIndex":5,"sample":20000,"warmup":40000,"seed":9,"noReplay":true}`
	const perReplica = 3
	type reply struct {
		code        int
		measurement string
	}
	replies := make(chan reply, perReplica*len(urls))
	var wg sync.WaitGroup
	for _, u := range urls {
		for k := 0; k < perReplica; k++ {
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				resp, err := http.Post(u+"/simulate", "application/json", strings.NewReader(body))
				if err != nil {
					replies <- reply{code: -1, measurement: err.Error()}
					return
				}
				defer resp.Body.Close()
				var out struct {
					Measurement json.RawMessage `json:"measurement"`
				}
				json.NewDecoder(resp.Body).Decode(&out)
				replies <- reply{code: resp.StatusCode, measurement: string(out.Measurement)}
			}(u)
		}
	}
	wg.Wait()
	close(replies)

	first := ""
	for r := range replies {
		if r.code != http.StatusOK {
			t.Fatalf("replica answered %d (%s), want 200", r.code, r.measurement)
		}
		if first == "" {
			first = r.measurement
		} else if r.measurement != first {
			t.Fatal("replicas returned different measurements for one experiment")
		}
	}

	var simulated int64
	for _, c := range clients {
		simulated += c.Stats().Simulated
	}
	if simulated != 1 {
		t.Fatalf("simulated = %d across the ring for %d identical requests, want exactly 1",
			simulated, perReplica*len(urls))
	}
	var proxied, local float64
	for _, reg := range regs {
		proxied += counterValue(reg, "musa_ring_owner_requests_total", map[string]string{"result": "proxied"})
		local += counterValue(reg, "musa_ring_owner_requests_total", map[string]string{"result": "local"})
	}
	if want := float64(2 * perReplica); proxied != want {
		t.Fatalf("proxied = %v, want %v (every non-owner request forwards)", proxied, want)
	}
	if want := float64(3 * perReplica); local != want {
		t.Fatalf("local = %v, want %v (the owner executes direct and proxied requests)", local, want)
	}
}

// TestRingRedirect covers the 307 alternative to proxying: the non-owner
// answers with Location pointing at the owner's /simulate, and following it
// by hand lands on a replica that executes.
func TestRingRedirect(t *testing.T) {
	urls, _ := startRingReplicas(t, 2, func(i int) (musa.ClientOptions, []serve.Option) {
		return musa.ClientOptions{SweepWorkers: 2, MaxJobs: 2, CacheDir: t.TempDir()},
			[]serve.Option{serve.WithRingRedirect()}
	})
	noFollow := &http.Client{
		CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
	}
	body := `{"app":"btmz","pointIndex":7,"sample":20000,"warmup":40000,"seed":3,"noReplay":true}`

	codes := map[string]int{}
	location := ""
	for _, u := range urls {
		resp, err := noFollow.Post(u+"/simulate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		codes[u] = resp.StatusCode
		if resp.StatusCode == http.StatusTemporaryRedirect {
			location = resp.Header.Get("Location")
		}
	}
	redirects, owner := 0, ""
	for u, code := range codes {
		switch code {
		case http.StatusTemporaryRedirect:
			redirects++
		case http.StatusOK:
			owner = u
		default:
			t.Fatalf("replica %s answered %d, want 200 or 307", u, code)
		}
	}
	if redirects != 1 || owner == "" {
		t.Fatalf("codes = %v, want exactly one 307 and one 200", codes)
	}
	if location != owner+"/simulate" {
		t.Fatalf("Location = %q, want %q", location, owner+"/simulate")
	}
	// Following the redirect by hand executes on the owner.
	resp, err := http.Post(location, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("followed redirect = %d, want 200", resp.StatusCode)
	}
}

// TestRingPeerArtifactFetch is the replication read path: a replica whose
// ring peer already built a shard's annotation pulls it over HTTP instead
// of re-running the annotate stage. The stage histogram's observation count
// is the proof — it must not advance on the second replica's run.
func TestRingPeerArtifactFetch(t *testing.T) {
	// The builder is a plain ringless worker: it never replicates, so the
	// artifact can only reach the replica through the peer fetch.
	w, _ := newFleetWorkerClient(t, musa.ClientOptions{SweepWorkers: 2, MaxJobs: 2}, nil)

	srv := httptest.NewUnstartedServer(nil)
	r1URL := "http://" + srv.Listener.Addr().String()
	c1, err := musa.NewClient(musa.ClientOptions{
		SweepWorkers: 2, MaxJobs: 2,
		Ring: musa.NewRing(r1URL, []string{r1URL, w.URL}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c1.Close() })
	srv.Config.Handler = serve.NewHandler(serve.New(c1))
	srv.Start()
	t.Cleanup(srv.Close)

	shard := `{"apps":["btmz"],"pointIndices":[0,1,2],"sample":20000,"warmup":40000,"seed":1,"noReplay":true}`
	runShard := func(url string) string {
		t.Helper()
		resp, err := http.Post(url+"/shard", "application/json", strings.NewReader(shard))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/shard = %d, want 200", resp.StatusCode)
		}
		var out struct {
			Measurements json.RawMessage `json:"measurements"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return string(out.Measurements)
	}

	before := stageObservations("annotate")
	fromBuilder := runShard(w.URL)
	mid := stageObservations("annotate")
	if mid == before {
		t.Fatal("builder ran no annotate stage; the test premise is broken")
	}

	fromReplica := runShard(r1URL)
	if after := stageObservations("annotate"); after != mid {
		t.Fatalf("replica re-ran annotate (%d new observations) instead of fetching from its peer; stats %+v",
			after-mid, c1.Stats())
	}
	if st := c1.Stats(); st.PeerArtifactsFetched < 1 || st.PeerArtifactMisses != 0 {
		t.Fatalf("peer fetches = %d with %d misses, want >= 1 with 0 (every artifact came from the peer)",
			st.PeerArtifactsFetched, st.PeerArtifactMisses)
	}
	if fromReplica != fromBuilder {
		t.Fatal("shard run on the replica differs from the builder's")
	}
}

// TestFleetRetryAfter429 checks the coordinator honors a worker's 429 +
// Retry-After with one bounded retry against the same worker instead of
// immediately redispatching the shard locally.
func TestFleetRetryAfter429(t *testing.T) {
	exp := fleetTestExperiment(t)
	ctx := context.Background()

	var shedOnce atomic.Bool
	w := newFleetWorker(t, func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/shard" && shedOnce.CompareAndSwap(false, true) {
				rw.Header().Set("Retry-After", "0")
				http.Error(rw, "overloaded", http.StatusTooManyRequests)
				return
			}
			h.ServeHTTP(rw, r)
		})
	})

	local, err := musa.NewClient(musa.ClientOptions{SweepWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	want, err := local.Run(ctx, exp)
	if err != nil {
		t.Fatal(err)
	}

	coord, err := musa.NewClient(musa.ClientOptions{Workers: []string{w.URL}, SweepWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	got, err := coord.Run(ctx, exp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonicalMeasurements(t, got), canonicalMeasurements(t, want)) {
		t.Fatal("sweep through a shedding worker differs from the in-process run")
	}
	st := coord.Stats()
	if st.ShardRetries < 1 {
		t.Fatalf("shardRetries = %d, want >= 1 (the 429 must be retried, not abandoned)", st.ShardRetries)
	}
	if st.Redispatched != 0 {
		t.Fatalf("redispatched = %d, want 0 (the retry keeps the shard remote)", st.Redispatched)
	}
	if int(st.Remote) != len(want.Sweep.Measurements) {
		t.Fatalf("remote = %d, want all %d measurements", st.Remote, len(want.Sweep.Measurements))
	}
}
