package musa_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"slices"
	"testing"

	"musa"
)

// optimizeReference is the testdata/optimize_reference.json fixture: the
// reference search experiment, the exhaustive grid's known optimum over
// the same candidates, and the cost bound the search must stay under. The
// CI optimizer smoke pins the same fixture over HTTP.
type optimizeReference struct {
	Experiment   json.RawMessage `json:"experiment"`
	ExpectedBest int             `json:"expectedBestPoint"`
	MaxCostRatio float64         `json:"maxCostRatio"`
}

func loadOptimizeReference(t testing.TB) (musa.Experiment, optimizeReference) {
	t.Helper()
	raw, err := os.ReadFile("testdata/optimize_reference.json")
	if err != nil {
		t.Fatal(err)
	}
	var ref optimizeReference
	if err := json.Unmarshal(raw, &ref); err != nil {
		t.Fatal(err)
	}
	var e musa.Experiment
	if err := json.Unmarshal(ref.Experiment, &e); err != nil {
		t.Fatal(err)
	}
	return e, ref
}

// gridEDPOptimum sweeps the candidates exhaustively at the experiment's
// own fidelity and returns the point index minimizing EDP (ties break on
// the lower index), plus how many measurements came from the store.
func gridEDPOptimum(t testing.TB, client *musa.Client, exp musa.Experiment) (best, cached int) {
	t.Helper()
	sweep := musa.Experiment{
		Kind: musa.KindSweep, Apps: []string{exp.App},
		PointIndices: slices.Clone(exp.PointIndices),
		Sample:       exp.Sample, Warmup: exp.Warmup, Seed: exp.Seed,
		NoReplay: exp.NoReplay,
	}
	res, err := client.RunStream(context.Background(), sweep, musa.Observer{
		Progress: func(d, total, c int) { cached = c },
	})
	if err != nil {
		t.Fatal(err)
	}
	byLabel := make(map[string]int, len(exp.PointIndices))
	for _, i := range exp.PointIndices {
		label, err := musa.PointLabel(i)
		if err != nil {
			t.Fatal(err)
		}
		byLabel[label] = i
	}
	best, bestEDP := -1, math.Inf(1)
	for _, m := range res.Sweep.Measurements {
		idx, ok := byLabel[m.Arch.Label()]
		if !ok {
			t.Fatalf("sweep returned configuration outside the candidate set: %s", m.Arch.Label())
		}
		edp := m.EnergyJ * m.TimeNs * 1e-9
		if edp < bestEDP || (edp == bestEDP && idx < best) {
			best, bestEDP = idx, edp
		}
	}
	return best, cached
}

// TestOptimizeFindsGridOptimum is the tentpole acceptance test: the
// successive-halving search recovers the exhaustive grid's EDP optimum on
// the reference case at a fraction of the grid's simulation cost, its
// result is byte-deterministic, and a cache-warm repeat simulates nothing.
func TestOptimizeFindsGridOptimum(t *testing.T) {
	exp, ref := loadOptimizeReference(t)
	client, err := musa.NewClient(musa.ClientOptions{CacheDir: t.TempDir(), SweepWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()

	res1, err := client.Run(ctx, exp)
	if err != nil {
		t.Fatal(err)
	}
	o1 := res1.Optimize
	if o1 == nil || o1.Best == nil {
		t.Fatalf("optimize result incomplete: %+v", o1)
	}
	if o1.CostRatio > ref.MaxCostRatio {
		t.Fatalf("search cost ratio %.3f exceeds the %.2f bound (probed %d of %d grid instrs)",
			o1.CostRatio, ref.MaxCostRatio, o1.ProbeCostInstrs, o1.GridCostInstrs)
	}
	if len(o1.Rungs) < 2 {
		t.Fatalf("reference case ran %d rungs; multi-fidelity search needs at least 2", len(o1.Rungs))
	}

	// The exhaustive grid over the same candidates names the same winner.
	gridBest, cached := gridEDPOptimum(t, client, exp)
	if gridBest != o1.Best.PointIndex {
		t.Fatalf("optimizer recommends #%d, exhaustive grid optimum is #%d", o1.Best.PointIndex, gridBest)
	}
	if ref.ExpectedBest != gridBest {
		t.Fatalf("fixture expectedBestPoint = %d, grid optimum is %d (update the fixture)",
			ref.ExpectedBest, gridBest)
	}
	// Final-rung store-key identity: the grid sweep must reuse the full-
	// fidelity finalist measurements the search already checkpointed.
	if cached < exp.Optimize.Finalists {
		t.Fatalf("grid sweep reused %d stored measurements, want >= %d finalists",
			cached, exp.Optimize.Finalists)
	}

	// A warm repeat is a pure cache read and returns identical bytes.
	simBefore := client.Stats().Simulated
	res2, err := client.Run(ctx, exp)
	if err != nil {
		t.Fatal(err)
	}
	if d := client.Stats().Simulated - simBefore; d != 0 {
		t.Fatalf("warm optimize re-run simulated %d new measurements, want 0", d)
	}
	j1, err := json.Marshal(o1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(res2.Optimize)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("optimize result not byte-stable across runs:\ncold %s\nwarm %s", j1, j2)
	}
}

// TestOptimizePowerCap pins the constrained search: a power cap excludes
// the unconstrained winner, every frontier point satisfies the cap, and an
// impossible cap is reported as Infeasible rather than silently ignored.
func TestOptimizePowerCap(t *testing.T) {
	exp, _ := loadOptimizeReference(t)
	client, err := musa.NewClient(musa.ClientOptions{CacheDir: t.TempDir(), SweepWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()

	res, err := client.Run(ctx, exp)
	if err != nil {
		t.Fatal(err)
	}
	uncapped := res.Optimize.Best

	capped := exp
	spec := *exp.Optimize
	// Cap just below the unconstrained winner's power draw: the search must
	// recommend something else that fits.
	spec.MaxPowerW = uncapped.PowerW * 0.99
	capped.Optimize = &spec
	cres, err := client.Run(ctx, capped)
	if err != nil {
		t.Fatal(err)
	}
	co := cres.Optimize
	if co.Infeasible {
		// At least some candidate should draw less than the near-optimum cap;
		// if not the model collapsed all power values onto one point.
		t.Fatalf("cap %.2f W marked infeasible; frontier %+v", spec.MaxPowerW, co.Frontier)
	}
	if co.Best.PointIndex == uncapped.PointIndex {
		t.Fatalf("capped search still recommends #%d, which exceeds the cap", uncapped.PointIndex)
	}
	for _, fp := range co.Frontier {
		if !fp.Feasible || fp.PowerW > spec.MaxPowerW {
			t.Fatalf("frontier point #%d (%.2f W) violates the %.2f W cap", fp.PointIndex, fp.PowerW, spec.MaxPowerW)
		}
	}

	impossible := exp
	ispec := *exp.Optimize
	ispec.MaxPowerW = 0.001
	impossible.Optimize = &ispec
	ires, err := client.Run(ctx, impossible)
	if err != nil {
		t.Fatal(err)
	}
	if !ires.Optimize.Infeasible {
		t.Fatal("0.001 W cap not reported Infeasible")
	}
	if len(ires.Optimize.Frontier) == 0 || ires.Optimize.Best == nil {
		t.Fatal("infeasible search returned no fallback frontier")
	}
}

// TestOptimizeValidation pins the typed validation errors of the nested
// spec: bad values fail fast with ErrBadOptimize before anything runs, and
// non-optimize kinds reject a stray Optimize spec.
func TestOptimizeValidation(t *testing.T) {
	bad := []musa.Experiment{
		{Kind: musa.KindOptimize, App: "btmz", Optimize: &musa.OptimizeSpec{Eta: 1}},
		{Kind: musa.KindOptimize, App: "btmz", Optimize: &musa.OptimizeSpec{Eta: 9}},
		{Kind: musa.KindOptimize, App: "btmz", Optimize: &musa.OptimizeSpec{Rungs: 9}},
		{Kind: musa.KindOptimize, App: "btmz", Optimize: &musa.OptimizeSpec{Finalists: 65}},
		{Kind: musa.KindOptimize, App: "btmz", Optimize: &musa.OptimizeSpec{MaxPowerW: -1}},
		{Kind: musa.KindOptimize, App: "btmz", Optimize: &musa.OptimizeSpec{MinSample: -5}},
		{Kind: musa.KindOptimize, App: "btmz", Optimize: &musa.OptimizeSpec{Objectives: []string{"latency"}}},
	}
	for _, e := range bad {
		if err := e.Validate(); !errors.Is(err, musa.ErrBadOptimize) {
			t.Fatalf("experiment %+v validated with err=%v, want ErrBadOptimize", e, err)
		}
	}
	// A bare optimize experiment is valid: every spec field defaults.
	ok := musa.Experiment{Kind: musa.KindOptimize, App: "btmz"}
	if err := ok.Validate(); err != nil {
		t.Fatalf("defaulted optimize experiment rejected: %v", err)
	}
	// Optimize specs belong to optimize experiments only.
	stray := musa.Experiment{Kind: musa.KindSweep, Optimize: &musa.OptimizeSpec{}}
	if err := stray.Validate(); !errors.Is(err, musa.ErrExperiment) {
		t.Fatalf("sweep with an Optimize spec validated: %v", err)
	}
}

// TestSnapshotCoherence pins Client.Snapshot against the facets it
// aggregates and against the deprecated single-facet accessors it
// replaces, which must keep answering identically.
func TestSnapshotCoherence(t *testing.T) {
	dir := t.TempDir()
	client, err := musa.NewClient(musa.ClientOptions{CacheDir: dir, MaxJobs: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	snap := client.Snapshot()
	if !snap.Store.Enabled || snap.Store.ReadOnly || snap.Store.Len != 0 {
		t.Fatalf("store snapshot: %+v", snap.Store)
	}
	if snap.Store.Dir != dir {
		t.Fatalf("store dir = %q, want %q", snap.Store.Dir, dir)
	}
	if snap.Store.MemtableBytes <= 0 || snap.Store.BlockCacheBytes <= 0 {
		t.Fatalf("engine sizing not default-resolved: %+v", snap.Store)
	}
	if snap.Jobs.Max != 3 || snap.Jobs.InFlight != 0 {
		t.Fatalf("jobs snapshot: %+v", snap.Jobs)
	}
	if !snap.Artifacts.Enabled || snap.Artifacts.Err != "" {
		t.Fatalf("artifacts snapshot: %+v", snap.Artifacts)
	}
	if snap.Replay.Disabled || snap.Replay.Network != "mn4" || len(snap.Replay.Ranks) == 0 {
		t.Fatalf("replay snapshot: %+v", snap.Replay)
	}

	// One node run moves the aggregate counters.
	idx := 0
	if _, err := client.Run(context.Background(), musa.Experiment{
		App: "btmz", PointIndex: &idx, Sample: 2000, NoReplay: true,
	}); err != nil {
		t.Fatal(err)
	}
	snap = client.Snapshot()
	if snap.Stats.Requests != 1 || snap.Stats.Simulated != 1 {
		t.Fatalf("stats after one run: %+v", snap.Stats)
	}
	if snap.Store.Len != 1 {
		t.Fatalf("store len after one run = %d", snap.Store.Len)
	}

	// Deprecated wrappers stay consistent with the snapshot.
	ranks, network, disabled := client.ReplayDefaults()
	if disabled != snap.Replay.Disabled || network != snap.Replay.Network ||
		!slices.Equal(ranks, snap.Replay.Ranks) {
		t.Fatal("ReplayDefaults diverges from Snapshot().Replay")
	}
	if client.MaxJobs() != snap.Jobs.Max || client.StoreLen() != snap.Store.Len ||
		client.StoreReadOnly() != snap.Store.ReadOnly ||
		client.ArtifactsEnabled() != snap.Artifacts.Enabled {
		t.Fatal("deprecated accessors diverge from Snapshot")
	}
	mem, block := client.StoreConfig()
	if mem != snap.Store.MemtableBytes || block != snap.Store.BlockCacheBytes {
		t.Fatal("StoreConfig diverges from Snapshot().Store")
	}

	// Snapshot marshals as one JSON document (the /stats building block).
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
}

// BenchmarkOptimizeReference times the reference successive-halving search
// cold (fresh store and artifact cache every iteration) and reports the
// probe-cost ratio as a custom metric; musa-benchgate carries it into
// BENCH_9.json as an informational (never gated) number.
func BenchmarkOptimizeReference(b *testing.B) {
	exp, _ := loadOptimizeReference(b)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		client, err := musa.NewClient(musa.ClientOptions{CacheDir: b.TempDir(), SweepWorkers: 4})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := client.Run(context.Background(), exp)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if res.Optimize == nil || res.Optimize.Best == nil {
			b.Fatal("optimize returned no recommendation")
		}
		b.ReportMetric(res.Optimize.CostRatio, "probe-cost-ratio")
		client.Close()
		b.StartTimer()
	}
}
