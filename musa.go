// Package musa is the public API of MUSA-Go, a from-scratch Go reproduction
// of "Design Space Exploration of Next-Generation HPC Machines" (Gómez et
// al., IPDPS 2019). It exposes the multi-scale simulation methodology —
// burst-mode scaling analysis, detailed node simulation, 256-rank MPI
// replay — and the paper's 864-point design-space exploration with power
// and energy estimation.
//
// Quick start:
//
//	app, _ := musa.App("lulesh")
//	res := musa.SimulateNode(app, musa.DefaultArch())
//	fmt.Println(res.ComputeNs, res.Power.Total())
//
// See the examples/ directory and DESIGN.md for the full methodology.
package musa

import (
	"fmt"

	"musa/internal/apps"
	"musa/internal/core"
	"musa/internal/cpu"
	"musa/internal/dram"
	"musa/internal/dse"
	"musa/internal/net"
	"musa/internal/node"
	"musa/internal/rts"
)

// Application is a workload model of one of the paper's five applications
// (or a custom one built with NewApplication).
type Application = apps.Profile

// App returns one of the built-in application models: "hydro", "spmz",
// "btmz", "spec3d" or "lulesh".
func App(name string) (*Application, error) { return apps.ByName(name) }

// Applications returns all five built-in models in the paper's order.
func Applications() []*Application { return apps.All() }

// Arch describes a compute-node architecture, mirroring Table I of the
// paper plus the unconventional extensions of Table II.
type Arch struct {
	// Cores per socket: 1, 32 or 64 in the paper's sweep.
	Cores int
	// CoreType is one of "lowend", "medium", "high", "aggressive".
	CoreType string
	// FreqGHz: 1.5, 2.0, 2.5 or 3.0 in the sweep.
	FreqGHz float64
	// VectorBits: 128, 256, 512 (sweep); 64, 1024, 2048 (Table II).
	VectorBits int
	// CacheLabel is "32M:256K", "64M:512K" or "96M:1M" (L3 total : L2 per
	// core).
	CacheLabel string
	// Channels is the DDR channel count (4 or 8; 16 for MEM+/MEM++).
	Channels int
	// HBM selects HBM2 instead of DDR4-2333 (the MEM++ configuration).
	HBM bool
}

// DefaultArch returns the mid-range reference configuration used by the
// characterization figure: 64 medium cores at 2 GHz, 128-bit SIMD,
// 64M:512K caches, 4-channel DDR4.
func DefaultArch() Arch {
	return Arch{
		Cores: 64, CoreType: "medium", FreqGHz: 2.0, VectorBits: 128,
		CacheLabel: "64M:512K", Channels: 4,
	}
}

// toPoint converts an Arch into the internal representation.
func (a Arch) toPoint() (dse.ArchPoint, error) {
	coreCfg, err := cpu.ByName(a.CoreType)
	if err != nil {
		return dse.ArchPoint{}, err
	}
	var cacheCfg dse.CacheCfg
	found := false
	for _, c := range dse.CacheConfigs() {
		if c.Label == a.CacheLabel {
			cacheCfg = c
			found = true
		}
	}
	if !found {
		return dse.ArchPoint{}, fmt.Errorf("musa: unknown cache label %q (want 32M:256K, 64M:512K or 96M:1M)", a.CacheLabel)
	}
	mem := dse.DDR4
	if a.HBM {
		mem = dse.HBM
	}
	return dse.ArchPoint{
		Cores: a.Cores, Core: coreCfg, FreqGHz: a.FreqGHz,
		VectorBits: a.VectorBits, Cache: cacheCfg, Channels: a.Channels, Mem: mem,
	}, nil
}

// SimOptions tune simulation fidelity and determinism.
type SimOptions struct {
	// SampleInstrs is the detailed sample length in scalar micro-ops
	// (0 = default, 300k). WarmupInstrs streams through the caches first
	// (0 = 2x sample).
	SampleInstrs int64
	WarmupInstrs int64
	Seed         uint64
}

func (o SimOptions) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// NodeResult is the outcome of a detailed node simulation.
type NodeResult = node.Result

// SimulateNode runs the detailed node-level simulation of app on arch with
// default options.
func SimulateNode(app *Application, arch Arch) NodeResult {
	return SimulateNodeOpts(app, arch, SimOptions{})
}

// SimulateNodeOpts runs the detailed node-level simulation with explicit
// options. It panics on invalid architecture parameters (use Arch values
// from the Table I grid).
func SimulateNodeOpts(app *Application, arch Arch, opts SimOptions) NodeResult {
	p, err := arch.toPoint()
	if err != nil {
		panic(err)
	}
	cfg := p.NodeConfig(opts.SampleInstrs, opts.WarmupInstrs, opts.seed())
	return node.Simulate(app, cfg)
}

// NetworkModel is the Dimemas-like interconnect model.
type NetworkModel = net.Model

// MareNostrumNetwork returns the MareNostrum IV-class network model used in
// the paper's full-application simulations.
func MareNostrumNetwork() NetworkModel { return net.MareNostrum4() }

// NetworkByName resolves a named network scenario: "mn4" (MareNostrum IV,
// the default), "hdr200" (200 Gb/s InfiniBand) or "eth10" (commodity
// 10 GbE).
func NetworkByName(name string) (NetworkModel, error) { return net.ByName(name) }

// NetworkNames lists the named network scenarios.
func NetworkNames() []string { return net.ModelNames() }

// FullAppResult couples node simulation and the cross-rank MPI replay.
type FullAppResult = core.DetailedResult

// SimulateFullApp runs detailed mode end to end on `ranks` MPI ranks (the
// paper uses 256) — node simulation plus network replay.
func SimulateFullApp(app *Application, arch Arch, ranks int, model NetworkModel, opts SimOptions) FullAppResult {
	p, err := arch.toPoint()
	if err != nil {
		panic(err)
	}
	cfg := p.NodeConfig(opts.SampleInstrs, opts.WarmupInstrs, opts.seed())
	return core.DetailedFullApp(app, cfg, ranks, model)
}

// RegionScaling runs the hardware-agnostic burst-mode scaling analysis of a
// single compute region (Fig. 2a): speedups versus one core.
func RegionScaling(app *Application, coreCounts []int) []float64 {
	return core.RegionScaling(app, coreCounts, core.DefaultBurstOptions())
}

// FullAppScalingResult is one core-count point of the Fig. 2b analysis.
type FullAppScalingResult = core.FullAppResult

// FullAppScaling runs the burst-mode whole-application scaling analysis
// including MPI overheads (Fig. 2b).
func FullAppScaling(app *Application, ranks int, coreCounts []int, model NetworkModel) []FullAppScalingResult {
	return core.FullAppScaling(app, ranks, coreCounts, model, core.DefaultBurstOptions())
}

// NewApplication validates and returns a custom application model; see the
// examples/custom_app example for the knobs.
func NewApplication(p Application) (*Application, error) {
	cp := p
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	return &cp, nil
}

// Ensure internal types referenced by Arch stay linked.
var (
	_ = dram.DDR4_2333
	_ = rts.FIFOCentral
)
