// Package musa is the public API of MUSA-Go, a from-scratch Go reproduction
// of "Design Space Exploration of Next-Generation HPC Machines" (Gómez et
// al., IPDPS 2019). It exposes the multi-scale simulation methodology —
// burst-mode scaling analysis, detailed node simulation, 256-rank MPI
// replay — and the paper's 864-point design-space exploration with power
// and energy estimation.
//
// Quick start — every scenario is one Experiment run through one Client:
//
//	client, _ := musa.NewClient(musa.ClientOptions{})
//	defer client.Close()
//	arch := musa.DefaultArch()
//	res, err := client.Run(context.Background(), musa.Experiment{
//		Kind: musa.KindNode, App: "lulesh", Arch: &arch,
//	})
//	fmt.Println(res.Measurement.TimeNs, res.Measurement.Power.Total(), err)
//
// See the examples/ directory, the Example tests and DESIGN.md for the full
// methodology.
package musa

import (
	"fmt"
	"strings"
	"sync"

	"musa/internal/apps"
	"musa/internal/core"
	"musa/internal/cpu"
	"musa/internal/dram"
	"musa/internal/dse"
	"musa/internal/net"
	"musa/internal/node"
	"musa/internal/rts"
)

// Application is a workload model of one of the paper's five applications
// (or a custom one built with NewApplication).
type Application = apps.Profile

// App returns one of the built-in application models: "hydro", "spmz",
// "btmz", "spec3d" or "lulesh".
func App(name string) (*Application, error) { return apps.ByName(name) }

// Applications returns all five built-in models in the paper's order.
func Applications() []*Application { return apps.All() }

// Arch describes a compute-node architecture, mirroring Table I of the
// paper plus the unconventional extensions of Table II. The JSON tags are
// the wire form the HTTP API and the canonical experiment encoding use.
type Arch struct {
	// Cores per socket: 1, 32 or 64 in the paper's sweep.
	Cores int `json:"cores"`
	// CoreType is one of "lowend", "medium", "high", "aggressive".
	CoreType string `json:"coreType"`
	// FreqGHz: 1.5, 2.0, 2.5 or 3.0 in the sweep.
	FreqGHz float64 `json:"freqGHz"`
	// VectorBits: 128, 256, 512 (sweep); 64, 1024, 2048 (Table II).
	VectorBits int `json:"vectorBits"`
	// CacheLabel is "32M:256K", "64M:512K" or "96M:1M" (L3 total : L2 per
	// core).
	CacheLabel string `json:"cacheLabel"`
	// Channels is the DDR channel count (4 or 8; 16 for MEM+/MEM++).
	Channels int `json:"channels"`
	// HBM selects HBM2 instead of DDR4-2333 (the MEM++ configuration).
	HBM bool `json:"hbm,omitempty"`
}

// DefaultArch returns the mid-range reference configuration used by the
// characterization figure: 64 medium cores at 2 GHz, 128-bit SIMD,
// 64M:512K caches, 4-channel DDR4.
func DefaultArch() Arch {
	return Arch{
		Cores: 64, CoreType: "medium", FreqGHz: 2.0, VectorBits: 128,
		CacheLabel: "64M:512K", Channels: 4,
	}
}

// CacheLabels lists the valid Table I cache configuration labels
// (shared L3 total : private L2 per core).
func CacheLabels() []string {
	cfgs := dse.CacheConfigs()
	labels := make([]string, len(cfgs))
	for i, c := range cfgs {
		labels[i] = c.Label
	}
	return labels
}

// toPoint converts an Arch into the internal representation. Every failure
// wraps ErrBadArch — this is the one validation path shared by
// Experiment.Normalize, the deprecated Simulate* wrappers and the HTTP
// layer.
func (a Arch) toPoint() (dse.ArchPoint, error) {
	coreCfg, err := cpu.ByName(a.CoreType)
	if err != nil {
		return dse.ArchPoint{}, fmt.Errorf("%w: %v", ErrBadArch, err)
	}
	var cacheCfg dse.CacheCfg
	found := false
	for _, c := range dse.CacheConfigs() {
		if c.Label == a.CacheLabel {
			cacheCfg = c
			found = true
			break
		}
	}
	if !found {
		return dse.ArchPoint{}, fmt.Errorf("%w: unknown cache label %q (valid: %s)",
			ErrBadArch, a.CacheLabel, strings.Join(CacheLabels(), ", "))
	}
	mem := dse.DDR4
	if a.HBM {
		mem = dse.HBM
	}
	p := dse.ArchPoint{
		Cores: a.Cores, Core: coreCfg, FreqGHz: a.FreqGHz,
		VectorBits: a.VectorBits, Cache: cacheCfg, Channels: a.Channels, Mem: mem,
	}
	// Validate the numeric knobs through the node config so an invalid
	// request becomes a typed error instead of a panic inside a simulation
	// worker.
	if err := p.NodeConfig(0, 0, 1).Validate(); err != nil {
		return dse.ArchPoint{}, fmt.Errorf("%w: %v", ErrBadArch, err)
	}
	return p, nil
}

// archOfPoint renders an internal grid point back into its public knobs.
func archOfPoint(p dse.ArchPoint) Arch {
	return Arch{
		Cores: p.Cores, CoreType: p.Core.Name, FreqGHz: p.FreqGHz,
		VectorBits: p.VectorBits, CacheLabel: p.Cache.Label,
		Channels: p.Channels, HBM: p.Mem == dse.HBM,
	}
}

// tableIGrid caches the enumerated Table I design space: the grid is
// immutable and index lookups (point resolution, /points rendering, sweep
// PointIndices validation) would otherwise rebuild all 864 points per call.
var tableIGrid = sync.OnceValue(dse.Enumerate)

// PointArch returns the public form of grid point i of the Table I design
// space (the /points HTTP listing and Experiment.PointIndex use the same
// indexing).
func PointArch(i int) (Arch, error) {
	grid := tableIGrid()
	if i < 0 || i >= len(grid) {
		return Arch{}, fmt.Errorf("%w: index %d out of range [0,%d)", ErrBadPoint, i, len(grid))
	}
	return archOfPoint(grid[i]), nil
}

// PointCount returns the size of the Table I design space (864).
func PointCount() int { return len(tableIGrid()) }

// PointLabel renders the compact label of grid point i (the same label
// measurements carry in Measurement.Arch.Label()).
func PointLabel(i int) (string, error) {
	grid := tableIGrid()
	if i < 0 || i >= len(grid) {
		return "", fmt.Errorf("%w: index %d out of range [0,%d)", ErrBadPoint, i, len(grid))
	}
	return grid[i].Label(), nil
}

// SimOptions tune simulation fidelity and determinism.
type SimOptions struct {
	// SampleInstrs is the detailed sample length in scalar micro-ops
	// (0 = default, 300k). WarmupInstrs streams through the caches first
	// (0 = 2x sample).
	SampleInstrs int64
	WarmupInstrs int64
	Seed         uint64
}

func (o SimOptions) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// NodeResult is the outcome of a detailed node simulation.
type NodeResult = node.Result

// SimulateNode runs the detailed node-level simulation of app on arch with
// default options.
//
// Deprecated: build an Experiment with KindNode and use Client.Run, which
// validates the request instead of panicking and serves repeated requests
// from the result store.
func SimulateNode(app *Application, arch Arch) NodeResult {
	return SimulateNodeOpts(app, arch, SimOptions{})
}

// SimulateNodeOpts runs the detailed node-level simulation with explicit
// options. It panics on invalid architecture parameters (use Arch values
// from the Table I grid).
//
// Deprecated: build an Experiment with KindNode and use Client.Run, which
// validates the request instead of panicking and serves repeated requests
// from the result store.
func SimulateNodeOpts(app *Application, arch Arch, opts SimOptions) NodeResult {
	p, err := arch.toPoint()
	if err != nil {
		panic(err)
	}
	cfg := p.NodeConfig(opts.SampleInstrs, opts.WarmupInstrs, opts.seed())
	return node.Simulate(app, cfg)
}

// NetworkModel is the Dimemas-like interconnect model.
type NetworkModel = net.Model

// MareNostrumNetwork returns the MareNostrum IV-class network model used in
// the paper's full-application simulations.
func MareNostrumNetwork() NetworkModel { return net.MareNostrum4() }

// NetworkByName resolves a named network scenario: "mn4" (MareNostrum IV,
// the default), "hdr200" (200 Gb/s InfiniBand) or "eth10" (commodity
// 10 GbE).
func NetworkByName(name string) (NetworkModel, error) { return net.ByName(name) }

// NetworkNames lists the named network scenarios.
func NetworkNames() []string { return net.ModelNames() }

// FullAppResult couples node simulation and the cross-rank MPI replay.
type FullAppResult = core.DetailedResult

// SimulateFullApp runs detailed mode end to end on `ranks` MPI ranks (the
// paper uses 256) — node simulation plus network replay.
//
// Deprecated: build an Experiment with KindFullApp and use Client.Run,
// which validates the request instead of panicking.
func SimulateFullApp(app *Application, arch Arch, ranks int, model NetworkModel, opts SimOptions) FullAppResult {
	p, err := arch.toPoint()
	if err != nil {
		panic(err)
	}
	cfg := p.NodeConfig(opts.SampleInstrs, opts.WarmupInstrs, opts.seed())
	return core.DetailedFullApp(app, cfg, ranks, model)
}

// RegionScaling runs the hardware-agnostic burst-mode scaling analysis of a
// single compute region (Fig. 2a): speedups versus one core.
func RegionScaling(app *Application, coreCounts []int) []float64 {
	return core.RegionScaling(app, coreCounts, core.DefaultBurstOptions())
}

// FullAppScalingResult is one core-count point of the Fig. 2b analysis.
type FullAppScalingResult = core.FullAppResult

// FullAppScaling runs the burst-mode whole-application scaling analysis
// including MPI overheads (Fig. 2b).
//
// Deprecated: build an Experiment with KindScaling and use Client.Run.
func FullAppScaling(app *Application, ranks int, coreCounts []int, model NetworkModel) []FullAppScalingResult {
	return core.FullAppScaling(app, ranks, coreCounts, model, core.DefaultBurstOptions())
}

// NewApplication validates and returns a custom application model; see the
// examples/custom_app example for the knobs.
func NewApplication(p Application) (*Application, error) {
	cp := p
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	return &cp, nil
}

// Ensure internal types referenced by Arch stay linked.
var (
	_ = dram.DDR4_2333
	_ = rts.FIFOCentral
)
