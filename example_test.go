package musa_test

import (
	"context"
	"fmt"
	"log"

	"musa"
)

// Example_node runs one detailed node measurement — the minimal use of the
// unified Experiment API. Invalid requests come back as typed errors
// (musa.ErrUnknownApp, musa.ErrBadArch, ...), never panics.
func Example_node() {
	client, err := musa.NewClient(musa.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	arch := musa.DefaultArch()
	res, err := client.Run(context.Background(), musa.Experiment{
		Kind: musa.KindNode, App: "lulesh", Arch: &arch,
		Sample: 20000, Warmup: 40000, NoReplay: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Kind, res.Measurement.App, res.Measurement.TimeNs > 0, res.Measurement.Power.Total() > 0)
	// Output: node lulesh true true
}

// Example_sweep runs a restricted design-space sweep and aggregates it the
// way the paper's figures do.
func Example_sweep() {
	client, err := musa.NewClient(musa.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	res, err := client.Run(context.Background(), musa.Experiment{
		Kind: musa.KindSweep, Apps: []string{"btmz"},
		PointIndices: []int{0, 1, 2, 3, 4, 5, 6, 7},
		Sample:       20000, Warmup: 40000, NoReplay: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res.Sweep.Measurements), res.Sweep.Measurements[0].App)
	// Output: 8 btmz
}

// Example_runStream streams sweep progress and per-measurement
// notifications through an Observer while the experiment executes.
func Example_runStream() {
	client, err := musa.NewClient(musa.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	var measurements int
	var lastDone, lastTotal int
	res, err := client.RunStream(context.Background(), musa.Experiment{
		Kind: musa.KindSweep, Apps: []string{"spmz"},
		PointIndices: []int{0, 1, 2, 3},
		Sample:       20000, Warmup: 40000, NoReplay: true,
	}, musa.Observer{
		Progress:    func(done, total, cached int) { lastDone, lastTotal = done, total },
		Measurement: func(m musa.Measurement) { measurements++ },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(measurements, lastDone, lastTotal, len(res.Sweep.Measurements))
	// Output: 4 4 4 4
}
