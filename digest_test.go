package musa

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"musa/internal/dse"
)

// goldenReducedSweepDigest is the SHA-256 of the reduced CI sweep's dataset
// bytes (see reducedSweepDigest), pinned when the staged sub-result pipeline
// landed. It is the byte-identity invariant as a constant: any change to the
// simulation core — pooled memory, SoA layouts, staged artifacts — must
// reproduce this exact dataset, whether the run is cold, builds the staged
// artifacts, or reuses them. Update it only for a deliberate model change.
const goldenReducedSweepDigest = "71906d24df8a8073e7bcf5116a6a2bece2036b7fc21bb701b49a7b1db70a0e8c"

// reducedSweepDigest hashes a dataset the way the invariant is stated: the
// canonical JSON encoding of every measurement (already deterministically
// sorted by dse.Run), one per line.
func reducedSweepDigest(t *testing.T, ms []dse.Measurement) string {
	t.Helper()
	h := sha256.New()
	for _, m := range ms {
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		h.Write(b)
		h.Write([]byte("\n"))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// reducedSweepExperimentT is benchReducedExperiment for tests: the
// one-application 64-core 2 GHz slice (72 points) at the bench fidelity.
func reducedSweepExperimentT(t *testing.T) Experiment {
	t.Helper()
	var idx []int
	for i := 0; i < PointCount(); i++ {
		a, err := PointArch(i)
		if err != nil {
			t.Fatal(err)
		}
		if a.Cores == 64 && a.FreqGHz == 2.0 {
			idx = append(idx, i)
		}
	}
	return Experiment{
		Kind:         KindSweep,
		Apps:         []string{"lulesh"},
		PointIndices: idx,
		Sample:       benchSample,
		Warmup:       benchWarmup,
		Seed:         1,
		ReplayRanks:  []int{64},
		Recompute:    true,
	}
}

// TestGoldenReducedSweepDigest runs the reduced sweep three ways — cold with
// no artifact layer, cold while building staged sub-result artifacts, and
// warm reusing them — and asserts every run reproduces the pinned digest.
func TestGoldenReducedSweepDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fidelity reduced sweep")
	}
	exp := reducedSweepExperimentT(t)
	artDir := t.TempDir()
	runs := []struct {
		name string
		opts ClientOptions
	}{
		{"cold", ClientOptions{NoArtifacts: true}},
		{"staged-build", ClientOptions{ArtifactCache: artDir}},
		{"staged-warm", ClientOptions{ArtifactCache: artDir}},
	}
	for _, run := range runs {
		run.opts.CacheDir = t.TempDir()
		client, err := NewClient(run.opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := client.Run(context.Background(), exp)
		if cerr := client.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		if got := reducedSweepDigest(t, res.Sweep.Measurements); got != goldenReducedSweepDigest {
			t.Errorf("%s run digest = %s, want %s (dataset bytes changed)",
				run.name, got, goldenReducedSweepDigest)
		}
	}
}
