// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §5 for the index). Each benchmark regenerates
// its artifact and prints the rows the paper reports, once, alongside the
// usual timing output. The heavyweight 864-point sweep dataset is built
// once and shared across the figure benchmarks.
//
// Absolute numbers are not expected to match the paper (our substrate is a
// synthetic-workload simulator, not the BSC toolchain); the comparisons to
// check are the shapes recorded in EXPERIMENTS.md.
package musa

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"musa/internal/apps"
	"musa/internal/cache"
	"musa/internal/core"
	"musa/internal/cpu"
	"musa/internal/dram"
	"musa/internal/dse"
	"musa/internal/isa"
	"musa/internal/net"
	"musa/internal/node"
	"musa/internal/report"
	"musa/internal/rts"
	"musa/internal/store"
)

// Reduced-but-meaningful sample sizes for the shared benchmark sweep; the
// cmd/musa-dse tool uses the full defaults.
const (
	benchSample = 120000
	benchWarmup = 700000
)

var (
	benchOnce sync.Once
	benchData *Sweep
)

func benchDataset(b *testing.B) *Sweep {
	b.Helper()
	benchOnce.Do(func() {
		fmt.Fprintln(os.Stderr, "building shared 864-configuration sweep dataset (once)...")
		client, err := NewClient(ClientOptions{})
		if err != nil {
			panic(err)
		}
		defer client.Close()
		res, err := client.Run(context.Background(), Experiment{
			Kind:   KindSweep,
			Sample: benchSample,
			Warmup: benchWarmup,
			Seed:   1,
		})
		if err != nil {
			panic(err)
		}
		benchData = res.Sweep
	})
	return benchData
}

// benchReducedIndices returns the Table I indices of the reduced CI sweep:
// the 64-core, 2 GHz slice (72 configurations).
func benchReducedIndices(b *testing.B) []int {
	b.Helper()
	var idx []int
	for i := 0; i < PointCount(); i++ {
		a, err := PointArch(i)
		if err != nil {
			b.Fatal(err)
		}
		if a.Cores == 64 && a.FreqGHz == 2.0 {
			idx = append(idx, i)
		}
	}
	return idx
}

// benchReducedExperiment is the reduced CI sweep shared by the cold and
// warm client benchmarks. Recompute keeps iterations comparable: the
// result store is written, never read.
func benchReducedExperiment(b *testing.B) Experiment {
	return Experiment{
		Kind:         KindSweep,
		Apps:         []string{"lulesh"},
		PointIndices: benchReducedIndices(b),
		Sample:       benchSample,
		Warmup:       benchWarmup,
		Seed:         1,
		ReplayRanks:  []int{64},
		Recompute:    true,
	}
}

// BenchmarkClientSweepReduced is the CI regression-gate benchmark: a
// reduced sweep (one application, the 64-core 2 GHz slice) through the
// supported Client.Run API with a result store attached, so every
// iteration pays the canonical-experiment key derivation and store
// checkpointing of a real run. NoArtifacts keeps it the true cold path —
// every iteration rebuilds annotations, latency models and burst traces —
// so it stays the baseline BenchmarkClientSweepWarmArtifacts is read
// against.
func BenchmarkClientSweepReduced(b *testing.B) {
	client, err := NewClient(ClientOptions{CacheDir: b.TempDir(), NoArtifacts: true})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	exp := benchReducedExperiment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := client.Run(context.Background(), exp)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Sweep.Measurements) != len(exp.PointIndices) {
			b.Fatalf("%d measurements", len(res.Sweep.Measurements))
		}
	}
}

// BenchmarkClientSweepWarmArtifacts is the warm-start counterpart of
// BenchmarkClientSweepReduced: the identical experiment over an artifact
// cache pre-populated by an untimed priming run, so every iteration
// re-simulates each point from cached annotations, DRAM latency curves and
// burst traces instead of rebuilding them. The gap between the two
// benchmarks in BENCH_9.json is the artifact-reuse speedup;
// TestSweepColdVsWarmArtifacts proves the datasets are byte-identical.
func BenchmarkClientSweepWarmArtifacts(b *testing.B) {
	artDir := b.TempDir()
	exp := benchReducedExperiment(b)
	prime, err := NewClient(ClientOptions{CacheDir: b.TempDir(), ArtifactCache: artDir})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := prime.Run(context.Background(), exp); err != nil {
		b.Fatal(err)
	}
	if err := prime.Close(); err != nil {
		b.Fatal(err)
	}

	client, err := NewClient(ClientOptions{CacheDir: b.TempDir(), ArtifactCache: artDir})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := client.Run(context.Background(), exp)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Sweep.Measurements) != len(exp.PointIndices) {
			b.Fatalf("%d measurements", len(res.Sweep.Measurements))
		}
	}
	if st := client.Snapshot().Artifacts.Stats; st.HitRates.Misses != 0 {
		b.Fatalf("warm benchmark rebuilt %d hit-rate tables", st.HitRates.Misses)
	}
}

var printed sync.Map

// printOnce renders a table to stdout the first time name is seen, so
// repeated benchmark iterations do not spam the output.
func printOnce(name string, render func() *report.Table) {
	if _, loaded := printed.LoadOrStore(name, true); loaded {
		return
	}
	t := render()
	fmt.Println()
	_ = t.Write(os.Stdout)
}

// BenchmarkTable1DesignSpace regenerates Table I: the 864-point grid.
func BenchmarkTable1DesignSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := dse.Enumerate()
		if len(pts) != 864 {
			b.Fatalf("%d points", len(pts))
		}
	}
	printOnce("table1", func() *report.Table {
		t := report.NewTable("Table I: swept parameters", "feature", "values")
		t.AddRow("cores", "1, 32, 64")
		t.AddRow("core OoO", "lowend, medium, high, aggressive")
		t.AddRow("frequency GHz", "1.5, 2.0, 2.5, 3.0")
		t.AddRow("vector bits", "128, 256, 512")
		t.AddRow("cache L3:L2", "32M:256K, 64M:512K, 96M:1M")
		t.AddRow("DDR4 channels", "4, 8")
		t.AddRow("total", fmt.Sprintf("%d configurations", len(dse.Enumerate())))
		return t
	})
}

// BenchmarkFigure1MPKI regenerates Fig. 1: per-application cache MPKIs and
// DRAM request rates at the reference configuration.
func BenchmarkFigure1MPKI(b *testing.B) {
	d := benchDataset(b)
	b.ResetTimer()
	var rows []CharacterizationRow
	for i := 0; i < b.N; i++ {
		rows = Characterization(d)
	}
	printOnce("fig1", func() *report.Table {
		t := report.NewTable("Figure 1: runtime statistics (paper: hydro 5.98/1.78/0.19/0.02 ... lulesh 13.5/4.6/5.3/0.51)",
			"app", "cores", "L1 MPKI", "L2 MPKI", "L3 MPKI", "GReq/s", "e2e ms @256", "MPI frac", "par eff")
		for _, r := range rows {
			t.AddRow(r.App, r.Cores, r.L1MPKI, r.L2MPKI, r.L3MPKI, r.GMemReqPerSec/1e9,
				r.EndToEndNs/1e6, r.MPIFraction, r.ParallelEff)
		}
		return t
	})
}

// BenchmarkSweepReplayOverhead compares the node-only sweep against the
// replay-enabled sweep (64 + 256 ranks per point) on a reduced grid at the
// bench sample sizes. The cluster stage shares one parsed burst trace per
// (app, ranks), so the budget is replay <= 1.5x node-only wall clock.
func BenchmarkSweepReplayOverhead(b *testing.B) {
	var pts []dse.ArchPoint
	for _, p := range dse.Enumerate() {
		if p.Cores == 64 && p.FreqGHz == 2.0 {
			pts = append(pts, p)
		}
	}
	for _, mode := range []string{"node-only", "replay"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := dse.Options{
					Apps:         []*apps.Profile{apps.LULESH()},
					Points:       pts,
					SampleInstrs: benchSample,
					WarmupInstrs: benchWarmup,
					Seed:         1,
				}
				if mode == "node-only" {
					o.Replay = dse.ReplayConfig{Disable: true}
				}
				d := dse.Run(context.Background(), o)
				if len(d.Measurements) != len(pts) {
					b.Fatalf("%d measurements", len(d.Measurements))
				}
			}
		})
	}
}

// BenchmarkFigure2aScaling regenerates Fig. 2a: hardware-agnostic scaling of
// one compute region per application.
func BenchmarkFigure2aScaling(b *testing.B) {
	var last map[string][]float64
	for i := 0; i < b.N; i++ {
		last = map[string][]float64{}
		for _, app := range Applications() {
			last[app.Name] = RegionScaling(app, []int{1, 32, 64})
		}
	}
	printOnce("fig2a", func() *report.Table {
		t := report.NewTable("Figure 2a: compute-region speedup (paper: ~70% efficiency @32, ~50% @64; only hydro > 75% @64)",
			"app", "speedup@32", "speedup@64", "eff@64")
		for _, app := range Applications() {
			sp := last[app.Name]
			t.AddRow(app.Name, sp[1], sp[2], sp[2]/64)
		}
		return t
	})
}

// BenchmarkFigure2bScaling regenerates Fig. 2b: whole-application scaling
// with MPI replay across 256 ranks.
func BenchmarkFigure2bScaling(b *testing.B) {
	model := MareNostrumNetwork()
	var last map[string][]FullAppScalingResult
	for i := 0; i < b.N; i++ {
		last = map[string][]FullAppScalingResult{}
		for _, app := range Applications() {
			last[app.Name] = FullAppScaling(app, 256, []int{32, 64}, model)
		}
	}
	printOnce("fig2b", func() *report.Table {
		t := report.NewTable("Figure 2b: full-app speedup incl. MPI, 256 ranks (paper: avg eff 49% @32, 28% @64)",
			"app", "speedup@32", "speedup@64", "eff@32", "eff@64", "MPI frac@64")
		for _, app := range Applications() {
			r := last[app.Name]
			t.AddRow(app.Name, r[0].Speedup, r[1].Speedup, r[0].Efficiency, r[1].Efficiency, r[1].MPIFraction)
		}
		return t
	})
}

// BenchmarkFigure3Timeline regenerates the Fig. 3 view: Specfem3D thread
// occupancy showing idle threads.
func BenchmarkFigure3Timeline(b *testing.B) {
	app, _ := App("spec3d")
	g := app.RegionGraph(0, 1)
	var s rts.Schedule
	for i := 0; i < b.N; i++ {
		s = rts.Simulate(g, rts.Options{Threads: 64, DispatchNs: 100, Policy: rts.FIFOCentral})
	}
	if _, loaded := printed.LoadOrStore("fig3", true); !loaded {
		fmt.Println("\n== Figure 3: Specfem3D task timeline on 64 threads (busy '#', idle '.') ==")
		_ = report.WriteScheduleTimeline(os.Stdout, g, s, 64)
	}
}

// BenchmarkFigure4Timeline regenerates the Fig. 4 view: LULESH rank timeline
// with MPI barrier waiting.
func BenchmarkFigure4Timeline(b *testing.B) {
	app, _ := App("lulesh")
	tr := core.SampleBurst(app, 64, 1)
	model := net.MareNostrum4()
	var res net.Result
	for i := 0; i < b.N; i++ {
		res = net.Replay(tr, model, nil)
	}
	if _, loaded := printed.LoadOrStore("fig4", true); !loaded {
		fmt.Println("\n== Figure 4: LULESH rank timeline, 64 ranks (compute '#', MPI wait 'w') ==")
		_ = report.WriteReplayTimeline(os.Stdout, res)
	}
}

// figureBench regenerates one b-panel figure from the shared dataset.
func figureBench(b *testing.B, name string, feat Feature, paperNote string) {
	d := benchDataset(b)
	b.ResetTimer()
	var perf, pow, energy []Bar
	for i := 0; i < b.N; i++ {
		perf = SpeedupBars(d, feat, 64)
		pow = PowerBars(d, feat, 64)
		energy = EnergyBars(d, feat, 64)
	}
	printOnce(name, func() *report.Table {
		t := report.NewTable(fmt.Sprintf("%s (64 cores; %s)", name, paperNote),
			"app", "value", "speedup", "sd", "power", "energy")
		for i := range perf {
			t.AddRow(perf[i].App, perf[i].Value, perf[i].Mean, perf[i].Std, pow[i].Mean, energy[i].Mean)
		}
		return t
	})
}

// BenchmarkFigure5VectorWidth regenerates Fig. 5 (SIMD width sweep).
func BenchmarkFigure5VectorWidth(b *testing.B) {
	figureBench(b, "Figure 5: FPU vector width", FeatVector,
		"paper: +20% hydro ... +75% spmz at 512-bit, lulesh flat; core power ~+60%")
}

// BenchmarkFigure6CacheSize regenerates Fig. 6 (cache configuration sweep).
func BenchmarkFigure6CacheSize(b *testing.B) {
	figureBench(b, "Figure 6: cache sizes", FeatCache,
		"paper: hydro +21%, btmz +9%, lulesh +12%, spec3d ~0")
}

// BenchmarkFigure7OoO regenerates Fig. 7 (out-of-order capability sweep).
func BenchmarkFigure7OoO(b *testing.B) {
	figureBench(b, "Figure 7: core OoO capabilities", FeatOoO,
		"paper: lowend ~35% slower (spec3d 60%); medium/high close to aggressive at ~80% power")
}

// BenchmarkFigure8MemChannels regenerates Fig. 8 (memory channel sweep).
func BenchmarkFigure8MemChannels(b *testing.B) {
	figureBench(b, "Figure 8: memory channels", FeatChannels,
		"paper: only lulesh speeds up (+60%); DRAM power ~2x, node power +10-20%")
}

// BenchmarkFigure9Frequency regenerates Fig. 9 (frequency sweep).
func BenchmarkFigure9Frequency(b *testing.B) {
	figureBench(b, "Figure 9: CPU frequency", FeatFreq,
		"paper: ~linear speedup except hydro beyond 2.5 GHz; ~2.5x power at 2x clock")
}

// BenchmarkFigure10PCA regenerates Fig. 10 (principal component analysis).
func BenchmarkFigure10PCA(b *testing.B) {
	d := benchDataset(b)
	b.ResetTimer()
	results := map[string]*PCAResult{}
	for i := 0; i < b.N; i++ {
		for _, app := range []string{"hydro", "lulesh"} {
			res, err := PCA(d, app)
			if err != nil {
				b.Fatal(err)
			}
			results[app] = res
		}
	}
	printOnce("fig10", func() *report.Table {
		t := report.NewTable("Figure 10: PCA loadings (paper: hydro PC0 = OoO vs time; lulesh PC0 = mem BW & cache vs time)",
			"app", "component", "OoO", "MemBW", "FPU", "Cache", "Time", "explained")
		for _, app := range []string{"hydro", "lulesh"} {
			r := results[app]
			for c := 0; c < 2; c++ {
				t.AddRow(app, fmt.Sprintf("PC%d", c),
					r.Loadings[c][0], r.Loadings[c][1], r.Loadings[c][2], r.Loadings[c][3], r.Loadings[c][4],
					fmt.Sprintf("%.1f%%", r.Explained[c]*100))
			}
		}
		return t
	})
}

var (
	unconvOnce sync.Once
	unconvRows []UnconventionalRow
)

// BenchmarkTable2Unconventional regenerates Table II's configurations.
func BenchmarkTable2Unconventional(b *testing.B) {
	unconvOnce.Do(func() {
		unconvRows = Unconventional(SimOptions{SampleInstrs: benchSample, WarmupInstrs: benchWarmup, Seed: 1})
	})
	var labels int
	for i := 0; i < b.N; i++ {
		labels = len(unconvRows)
	}
	if labels != 6 {
		b.Fatalf("%d rows", labels)
	}
	printOnce("table2", func() *report.Table {
		t := report.NewTable("Table II: application-specific configurations", "app", "label", "arch")
		for _, r := range unconvRows {
			t.AddRow(r.App, r.Label, r.Arch.Label())
		}
		return t
	})
}

// BenchmarkFigure11Unconventional regenerates Fig. 11: the unconventional
// configurations' relative performance/power/energy.
func BenchmarkFigure11Unconventional(b *testing.B) {
	unconvOnce.Do(func() {
		unconvRows = Unconventional(SimOptions{SampleInstrs: benchSample, WarmupInstrs: benchWarmup, Seed: 1})
	})
	var sum float64
	for i := 0; i < b.N; i++ {
		for _, r := range unconvRows {
			sum += r.RelPerf
		}
	}
	_ = sum
	printOnce("fig11", func() *report.Table {
		t := report.NewTable("Figure 11 (paper: Vector+ 1.13x, Vector++ 1.43x perf / 3.14x power; MEM+ -47% energy; MEM++ 1.30x perf)",
			"app", "config", "perf", "power", "energy")
		for _, r := range unconvRows {
			energy := fmt.Sprintf("%.3f", r.RelEnergy)
			if !r.EnergyKnown {
				energy = "n/a"
			}
			t.AddRow(r.App, r.Label, r.RelPerf, r.RelPower, energy)
		}
		return t
	})
}

// --- Ablation benchmarks (DESIGN.md §7) ---

// BenchmarkAblationDRAMSched compares FR-FCFS and FCFS DRAM scheduling on
// mixed traffic.
func BenchmarkAblationDRAMSched(b *testing.B) {
	app, _ := App("lulesh")
	for _, policy := range []dram.SchedPolicy{dram.FRFCFS, dram.FCFS} {
		b.Run(policy.String(), func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				m := node.BuildLatencyModel(app, dram.Config{Spec: dram.DDR4_2333(), Channels: 4}, policy, 1)
				bw = m.SustainableBW()
			}
			b.ReportMetric(bw/1e9, "GB/s-sustained")
		})
	}
}

// BenchmarkAblationScheduler compares the central FIFO queue against work
// stealing on a fine-grained task graph.
func BenchmarkAblationScheduler(b *testing.B) {
	app, _ := App("hydro")
	g := app.RegionGraph(0, 1)
	for _, policy := range []rts.Policy{rts.FIFOCentral, rts.WorkSteal} {
		b.Run(policy.String(), func(b *testing.B) {
			var mk float64
			for i := 0; i < b.N; i++ {
				s := rts.Simulate(g, rts.Options{Threads: 64, DispatchNs: 100, Policy: policy})
				mk = s.MakespanNs
			}
			b.ReportMetric(mk/1e3, "makespan-us")
		})
	}
}

// BenchmarkAblationContention measures the bandwidth-contention fixed point
// on versus off for the bandwidth-bound application.
func BenchmarkAblationContention(b *testing.B) {
	app, _ := App("lulesh")
	for _, disable := range []bool{false, true} {
		name := "fixedpoint"
		if disable {
			name = "flat-latency"
		}
		b.Run(name, func(b *testing.B) {
			point := dse.ArchPoint{
				Cores: 64, Core: cpu.Medium(), FreqGHz: 2.0, VectorBits: 128,
				Cache: dse.CacheConfigs()[1], Channels: 4, Mem: dse.DDR4,
			}
			cfg := point.NodeConfig(60000, 200000, 1)
			cfg.DisableContention = disable
			var t float64
			for i := 0; i < b.N; i++ {
				res := node.Simulate(app, cfg)
				t = res.ComputeNs
			}
			b.ReportMetric(t/1e6, "compute-ms")
		})
	}
}

// BenchmarkAblationFusionWindow sweeps the vector model's MinRun threshold:
// how many consecutive loop iterations a block needs before wide fusion.
func BenchmarkAblationFusionWindow(b *testing.B) {
	app, _ := App("spmz")
	for _, minRun := range []int{1, 4, 16, 64} {
		// name=value instead of name-value: a trailing -N would be
		// indistinguishable from the GOMAXPROCS suffix go test appends,
		// collapsing distinct sub-benchmarks in the CI bench artifact.
		b.Run(fmt.Sprintf("minrun=%d", minRun), func(b *testing.B) {
			var fused int64
			for i := 0; i < b.N; i++ {
				src := &isa.LimitStream{S: apps.NewDetailedStream(app, 1), N: 60000}
				fu := isa.NewFuser(src, isa.FuserConfig{WidthBits: 512, MinRun: minRun, MaxBlock: 4096})
				for {
					if _, ok := fu.Next(); !ok {
						break
					}
				}
				fused = fu.Stats().Fused
			}
			b.ReportMetric(float64(fused), "lanes-fused")
		})
	}
}

// BenchmarkAblationPrefetcher measures the stream prefetcher's effect on
// the bandwidth-bound code.
func BenchmarkAblationPrefetcher(b *testing.B) {
	app, _ := App("lulesh")
	for _, deg := range []int{-1, 4} {
		name := "prefetch-on"
		if deg < 0 {
			name = "prefetch-off"
		}
		b.Run(name, func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				hier := cache.NewHierarchy(cache.HierarchyConfig{
					L1:              cache.Config{Name: "L1", SizeBytes: 32 * 1024, Assoc: 8, LatencyCycle: 4},
					L2:              cache.Config{Name: "L2", SizeBytes: 512 * 1024, Assoc: 16, LatencyCycle: 11},
					L3:              cache.Config{Name: "L3", SizeBytes: 1 << 20, Assoc: 16, LatencyCycle: 70},
					MemLatencyCycle: 120,
					PrefetchDegree:  deg,
				})
				c := cpu.New(cpu.Medium(), hier, 1)
				src := &isa.LimitStream{S: apps.NewDetailedStream(app, 1), N: 60000}
				fu := isa.NewFuser(src, isa.DefaultFuserConfig(128))
				ipc = c.Run(fu).IPC()
			}
			b.ReportMetric(ipc, "ipc")
		})
	}
}

// ---------------------------------------------------------------------------
// Result-store micro-benchmarks. Each iteration performs storeBenchOps
// operations (a batch, so -benchtime 1x still yields a stable number in CI);
// ns/op is therefore the cost of one batch, comparable across storage
// engines. The store is sized so the working set overflows the LRU front and
// lookups exercise the on-disk engine, not just the in-memory cache.

const storeBenchOps = 1024

func storeBenchMeasurement(i int) dse.Measurement {
	return dse.Measurement{
		App:    "hydro",
		Arch:   dse.ArchPoint{Cores: 32, Core: cpu.Medium(), FreqGHz: 2.0, VectorBits: 256, Cache: dse.CacheConfigs()[1], Channels: 4, Mem: dse.DDR4},
		TimeNs: float64(i), IPC: 1.1, EnergyJ: float64(i) * 1e-9,
		L1MPKI: 1.5, L2MPKI: 0.7, L3MPKI: 0.2, GMemReqPerSec: 1e9,
		Cluster: []dse.ClusterStat{
			{Ranks: 64, EndToEndNs: float64(i) * 1.2, MPIFraction: 0.1, ParallelEff: 0.8},
			{Ranks: 256, EndToEndNs: float64(i) * 1.5, MPIFraction: 0.25, ParallelEff: 0.6},
		},
		EndToEndNs: float64(i) * 1.5, MPIFraction: 0.25, ParallelEff: 0.6,
	}
}

func storeBenchKey(prefix string, i int) string {
	return fmt.Sprintf("%s-%06d", prefix, i)
}

// storeBenchOpen opens a store whose LRU front is deliberately smaller than
// the benchmark working set and pre-fills it with 4*storeBenchOps entries.
func storeBenchOpen(b *testing.B) *store.Store {
	b.Helper()
	st, err := store.Open(b.TempDir(), store.Options{LRUEntries: 256})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	for i := 0; i < 4*storeBenchOps; i++ {
		if err := st.Put(storeBenchKey("warm", i), storeBenchMeasurement(i)); err != nil {
			b.Fatal(err)
		}
	}
	// Quiesce: drain in-flight background flushes and compactions so the
	// measured loop is not sharing the CPU with leftover prefill work.
	if err := st.Drain(); err != nil {
		b.Fatal(err)
	}
	return st
}

// storeBenchKeys precomputes a batch of lookup keys so the read benchmarks
// time the store, not fmt formatting and its garbage.
func storeBenchKeys(prefix string, stride int) []string {
	keys := make([]string, storeBenchOps)
	for j := range keys {
		keys[j] = storeBenchKey(prefix, j*stride)
	}
	return keys
}

// BenchmarkStoreGetHit measures one batch of lookups of stored keys; most
// overflow the LRU front and are served by the engine.
func BenchmarkStoreGetHit(b *testing.B) {
	st := storeBenchOpen(b)
	keys := storeBenchKeys("warm", 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range keys {
			if _, ok := st.Get(k); !ok {
				b.Fatal("stored key missed")
			}
		}
	}
}

// BenchmarkStoreGetMiss measures one batch of lookups of never-computed
// keys — the dominant operation of a cold design-space exploration at serve
// scale, and the case bloom filters make nearly free.
func BenchmarkStoreGetMiss(b *testing.B) {
	st := storeBenchOpen(b)
	keys := storeBenchKeys("never-computed", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range keys {
			if _, ok := st.Get(k); ok {
				b.Fatal("phantom hit")
			}
		}
	}
}

// BenchmarkStorePut measures one batch of fresh-key writes.
func BenchmarkStorePut(b *testing.B) {
	st := storeBenchOpen(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < storeBenchOps; j++ {
			if err := st.Put(storeBenchKey(fmt.Sprintf("put-%d", i), j), storeBenchMeasurement(j)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkStoreMixed measures a concurrent read-dominated workload: three
// reader goroutines (alternating hits and misses) against one writer, the
// shape of a warm serve replica taking traffic while a sweep checkpoints.
func BenchmarkStoreMixed(b *testing.B) {
	st := storeBenchOpen(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for j := 0; j < storeBenchOps/4; j++ {
					if j%2 == 0 {
						st.Get(storeBenchKey("warm", (j*(r+2))%(4*storeBenchOps)))
					} else {
						st.Get(storeBenchKey("mixed-miss", j*(r+1)))
					}
				}
			}(r)
		}
		for j := 0; j < storeBenchOps/4; j++ {
			if err := st.Put(storeBenchKey(fmt.Sprintf("mixed-%d", i), j), storeBenchMeasurement(j)); err != nil {
				b.Fatal(err)
			}
		}
		wg.Wait()
	}
}
