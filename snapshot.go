package musa

import (
	"path/filepath"

	"musa/internal/store"
	"musa/internal/store/lsm"
)

// Snapshot is one coherent view of everything a Client exposes for
// introspection: the request counters, job-pool occupancy, result-store
// state and effective sizing, the artifact cache, and the default replay
// configuration. It replaces the former per-facet accessor methods
// (StoreLen, StoreEngineStats, ArtifactStats, InFlight, ...), which
// remain as thin deprecated wrappers. The struct marshals cleanly, so
// /stats-style endpoints can serve it (or pieces of it) directly.
type Snapshot struct {
	// Stats are the client request counters.
	Stats ClientStats `json:"stats"`
	// Jobs is the simulation job pool's occupancy.
	Jobs JobsSnapshot `json:"jobs"`
	// Store is the result store's state (Enabled false without CacheDir).
	Store StoreSnapshot `json:"store"`
	// Artifacts is the artifact cache's state (Enabled false with
	// NoArtifacts).
	Artifacts ArtifactsSnapshot `json:"artifacts"`
	// Replay is the client's default replay configuration.
	Replay ReplaySnapshot `json:"replay"`
}

// JobsSnapshot is the job pool's occupancy: Max is the concurrent-job
// bound a musa-serve worker advertises on /capacity, InFlight how many
// jobs currently hold a slot.
type JobsSnapshot struct {
	Max      int `json:"max"`
	InFlight int `json:"inFlight"`
}

// StoreSnapshot is the result store's state: entry count, writer mode,
// the LSM engine counters, and the effective engine sizing with defaults
// resolved (what the store actually runs with, not what the flags said).
type StoreSnapshot struct {
	Enabled         bool      `json:"enabled"`
	ReadOnly        bool      `json:"readOnly"`
	Len             int       `json:"len"`
	Engine          lsm.Stats `json:"engine"`
	MemtableBytes   int64     `json:"memtableBytes"`
	BlockCacheBytes int64     `json:"blockCacheBytes"`
	// Dir is the store directory ("" without one).
	Dir string `json:"dir,omitempty"`
}

// ArtifactsSnapshot is the artifact cache's state. Err carries the first
// swallowed blob I/O error as text (the cache is best-effort; a failing
// disk degrades it to rebuild-every-time rather than failing runs).
type ArtifactsSnapshot struct {
	Enabled bool          `json:"enabled"`
	Stats   ArtifactStats `json:"stats"`
	Err     string        `json:"err,omitempty"`
	// Dir is the cache directory ("" for the in-memory cache).
	Dir string `json:"dir,omitempty"`
}

// ReplaySnapshot is the client's normalized default replay configuration
// for experiments that do not set their own.
type ReplaySnapshot struct {
	Disabled bool   `json:"disabled"`
	Ranks    []int  `json:"ranks,omitempty"`
	Network  string `json:"network,omitempty"`
}

// Snapshot returns one coherent introspection snapshot of the client.
// The facets are read independently (each atomically consistent with
// itself); taking a snapshot is cheap enough for scrape paths.
func (c *Client) Snapshot() Snapshot {
	return Snapshot{
		Stats:     c.Stats(),
		Jobs:      JobsSnapshot{Max: cap(c.sem), InFlight: len(c.sem)},
		Store:     c.storeSnapshot(),
		Artifacts: c.artifactsSnapshot(),
		Replay:    c.replaySnapshot(),
	}
}

func (c *Client) storeSnapshot() StoreSnapshot {
	memtable := int64(c.opts.StoreMemtableBytes)
	if memtable <= 0 {
		memtable = lsm.DefaultMemtableBytes
	}
	blockCache := c.opts.StoreBlockCacheBytes
	if blockCache == 0 {
		blockCache = lsm.DefaultBlockCacheBytes
	}
	if blockCache < 0 {
		blockCache = 0 // disabled
	}
	out := StoreSnapshot{
		Enabled:         c.st != nil,
		MemtableBytes:   memtable,
		BlockCacheBytes: blockCache,
		Dir:             c.opts.CacheDir,
	}
	if c.st != nil {
		out.ReadOnly = c.st.ReadOnly()
		out.Len = c.st.Len()
		out.Engine = c.st.EngineStats()
	}
	return out
}

func (c *Client) artifactsSnapshot() ArtifactsSnapshot {
	if c.art == nil {
		return ArtifactsSnapshot{}
	}
	out := ArtifactsSnapshot{Enabled: true, Stats: c.art.Stats()}
	if err := c.art.Err(); err != nil {
		out.Err = err.Error()
	}
	if dir := c.opts.ArtifactCache; dir != "" {
		out.Dir = dir
	} else if c.opts.CacheDir != "" {
		out.Dir = filepath.Join(c.opts.CacheDir, "artifacts")
	}
	return out
}

func (c *Client) replaySnapshot() ReplaySnapshot {
	if c.opts.NoReplay {
		return ReplaySnapshot{Disabled: true}
	}
	ranks := c.opts.ReplayRanks
	if ranks == nil {
		ranks = DefaultReplayRanks()
	}
	network := c.opts.Network
	if network == "" {
		network = "mn4"
	}
	return ReplaySnapshot{Ranks: ranks, Network: network}
}

// Deprecated accessor wrappers. Each predates Snapshot and survives for
// API compatibility only; new code reads the corresponding Snapshot
// field.

// MaxJobs returns the client's concurrent-job bound.
//
// Deprecated: read Snapshot().Jobs.Max.
func (c *Client) MaxJobs() int { return cap(c.sem) }

// InFlight returns the number of simulation jobs currently holding a slot.
//
// Deprecated: read Snapshot().Jobs.InFlight.
func (c *Client) InFlight() int { return len(c.sem) }

// StoreLen returns the number of measurements in the result store (0
// without one).
//
// Deprecated: read Snapshot().Store.Len.
func (c *Client) StoreLen() int { return c.storeSnapshot().Len }

// StoreEngineStats returns a snapshot of the result store's LSM engine
// counters (zero without a CacheDir).
//
// Deprecated: read Snapshot().Store.Engine.
func (c *Client) StoreEngineStats() lsm.Stats { return c.storeSnapshot().Engine }

// StoreReadOnly reports whether the result store was opened read-only.
//
// Deprecated: read Snapshot().Store.ReadOnly.
func (c *Client) StoreReadOnly() bool { return c.storeSnapshot().ReadOnly }

// StoreConfig returns the result store's effective engine sizing.
//
// Deprecated: read Snapshot().Store.MemtableBytes / BlockCacheBytes.
func (c *Client) StoreConfig() (memtableBytes int64, blockCacheBytes int64) {
	s := c.storeSnapshot()
	return s.MemtableBytes, s.BlockCacheBytes
}

// ArtifactsEnabled reports whether the client holds an artifact cache.
//
// Deprecated: read Snapshot().Artifacts.Enabled.
func (c *Client) ArtifactsEnabled() bool { return c.art != nil }

// ArtifactStats returns a snapshot of the artifact-cache counters (zero
// with NoArtifacts).
//
// Deprecated: read Snapshot().Artifacts.Stats.
func (c *Client) ArtifactStats() store.ArtifactStats { return c.artifactsSnapshot().Stats }

// ArtifactErr returns the first artifact blob I/O error the cache
// swallowed.
//
// Deprecated: read Snapshot().Artifacts.Err.
func (c *Client) ArtifactErr() error {
	if c.art == nil {
		return nil
	}
	return c.art.Err()
}

// ReplayDefaults returns the client's normalized default replay
// configuration.
//
// Deprecated: read Snapshot().Replay.
func (c *Client) ReplayDefaults() (ranks []int, network string, disabled bool) {
	r := c.replaySnapshot()
	return r.Ranks, r.Network, r.Disabled
}
