package musa

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"time"

	"musa/internal/apps"
	"musa/internal/obs"
	"musa/internal/opt"
)

// runOptimize executes a KindOptimize experiment: a successive-halving
// search whose every probe is an ordinary content-addressed sweep
// experiment. Each rung runs through runSweep — store lookup first,
// single-flight coalescing, artifact reuse, fleet shard dispatch when
// workers are configured — so search traffic warms the same caches grid
// sweeps use, and a store warmed by either shortcuts the other. Cheap
// rungs probe at a reduced detailed sample (full warmup, replay dropped);
// the top rung reuses the experiment's own fidelity and replay fields
// verbatim, which makes its probe store keys byte-identical to an
// equivalent KindSweep over the same points.
//
// The returned OptimizeResult is deterministic: rung history, frontier
// and cost accounting carry no timing or cache-state information, so a
// cache-warm re-run returns byte-identical results.
func (c *Client) runOptimize(ctx context.Context, ne Experiment, watch Observer) (*Result, error) {
	spec := *ne.Optimize
	candidates := ne.PointIndices
	if candidates == nil {
		candidates = make([]int, PointCount())
		for i := range candidates {
			candidates[i] = i
		}
	}
	fullSample, fullWarmup := apps.EffectiveFidelity(ne.Sample, ne.Warmup)
	ladder := opt.Schedule(len(candidates), spec.Eta, spec.Rungs, spec.Finalists)

	result := &OptimizeResult{
		App:        ne.App,
		Objectives: spec.Objectives,
		MaxPowerW:  spec.MaxPowerW,
		Candidates: len(candidates),
	}
	res := &Result{Kind: KindOptimize, Optimize: result}

	// Cumulative probe progress across rungs for the Observer.
	totalProbes := 0
	for _, r := range ladder {
		totalProbes += r.Candidates
	}
	doneProbes, cachedProbes := 0, 0

	grid := tableIGrid()
	alive := candidates
	for i, rung := range ladder {
		final := i == len(ladder)-1
		probe := Experiment{
			Kind: KindSweep, Apps: []string{ne.App}, PointIndices: alive,
			Seed: ne.Seed, Recompute: ne.Recompute,
		}
		if final {
			// Fidelity and replay verbatim from the experiment: the top
			// rung's store keys equal an equivalent grid sweep's.
			probe.Sample, probe.Warmup = ne.Sample, ne.Warmup
			probe.ReplayRanks, probe.NoReplay, probe.Network = ne.ReplayRanks, ne.NoReplay, ne.Network
		} else {
			probe.Sample = max(spec.MinSample, int64(rung.Fraction*float64(fullSample)))
			// Cheap rungs keep the FULL warmup: the detailed sample window is
			// [warmup, warmup+sample) of one seeded instruction stream, so a
			// shortened warmup would shift the window and probe a different
			// phase mix — rankings across rungs would then disagree for
			// reasons that have nothing to do with the architecture. With the
			// warmup pinned, every cheap probe measures a prefix of the full-
			// fidelity window and only the (expensive) detailed-sample length
			// varies.
			probe.Warmup = fullWarmup
			probe.NoReplay = true
		}
		pne, err := probe.normalize(c.resolveApp)
		if err != nil {
			return nil, err // unreachable: derived from a normalized experiment
		}

		fidelity := "cheap"
		if final {
			fidelity = "full"
		}
		if final {
			c.optProbesFull.Add(int64(len(alive)))
		} else {
			c.optProbesCheap.Add(int64(len(alive)))
		}
		rctx, span := obs.StartSpan(ctx, "opt.rung",
			obs.A("rung", strconv.Itoa(i)),
			obs.A("fidelity", fidelity),
			obs.A("candidates", strconv.Itoa(len(alive))))
		start := time.Now()

		base, baseCached := doneProbes, cachedProbes
		inner := Observer{
			Progress: func(d, t, cach int) {
				doneProbes, cachedProbes = base+d, baseCached+cach
				if watch.Progress != nil {
					watch.Progress(doneProbes, totalProbes, cachedProbes)
				}
			},
			Measurement: func(m Measurement) {
				_, ps := obs.StartSpan(rctx, "opt.probe",
					obs.A("app", m.App), obs.A("arch", m.Arch.Label()))
				ps.End()
				if watch.Measurement != nil {
					watch.Measurement(m)
				}
			},
		}
		sres, err := c.runSweep(rctx, pne, inner)
		span.End()
		if h := c.optRungHist.Load(); h != nil {
			h.Observe(time.Since(start).Seconds())
		}
		if err != nil {
			// Hand back the rung history gathered so far alongside the
			// error, mirroring the partial dataset a canceled sweep returns.
			return res, fmt.Errorf("musa: optimize canceled in rung %d/%d: %w", i, len(ladder), err)
		}

		// Evaluate the rung: measurements map back to grid indices by label.
		byLabel := make(map[string]int, len(alive))
		for _, idx := range alive {
			byLabel[grid[idx].Label()] = idx
		}
		pts := make([]opt.Point, 0, len(alive))
		byIndex := make(map[int]Measurement, len(alive))
		for _, m := range sres.Sweep.Measurements {
			idx, ok := byLabel[m.Arch.Label()]
			if !ok {
				return res, fmt.Errorf("musa: optimize rung %d returned unknown configuration %q", i, m.Arch.Label())
			}
			byIndex[idx] = m
			vals := objectiveValues(m)
			pts = append(pts, opt.Point{
				ID:       idx,
				Metrics:  vals.vector(spec.Objectives),
				Feasible: spec.MaxPowerW <= 0 || m.Power.Total() <= spec.MaxPowerW,
			})
		}
		if len(pts) != len(alive) {
			return res, fmt.Errorf("musa: optimize rung %d probed %d of %d configurations", i, len(pts), len(alive))
		}

		esample, _ := apps.EffectiveFidelity(probe.Sample, probe.Warmup)
		summary := RungSummary{
			Rung:             i,
			Candidates:       len(alive),
			FidelityFraction: rung.Fraction,
			Sample:           probe.Sample,
			Warmup:           probe.Warmup,
			Replay:           final && !ne.NoReplay,
			CostInstrs:       int64(len(alive)) * esample,
		}
		result.ProbeCostInstrs += summary.CostInstrs

		if final {
			front := opt.Front(pts)
			result.Infeasible = spec.MaxPowerW > 0 && !front[0].Feasible
			for _, p := range front {
				m := byIndex[p.ID]
				label, _ := PointLabel(p.ID) // normalized: in range
				fp := FrontierPoint{
					PointIndex:  p.ID,
					Label:       label,
					Arch:        archOfPoint(grid[p.ID]),
					Objectives:  objectiveValues(m),
					PowerW:      m.Power.Total(),
					Feasible:    p.Feasible,
					Measurement: &m,
				}
				result.Frontier = append(result.Frontier, fp)
				summary.Survivors = append(summary.Survivors, p.ID)
			}
			result.Best = bestOf(result.Frontier, spec.Objectives)
		} else {
			alive = opt.Select(pts, ladder[i+1].Candidates)
			summary.Survivors = alive
		}
		result.Rungs = append(result.Rungs, summary)
		if watch.Rung != nil {
			watch.Rung(summary)
		}
	}

	result.GridCostInstrs = int64(len(candidates)) * fullSample
	result.CostRatio = float64(result.ProbeCostInstrs) / float64(result.GridCostInstrs)
	return res, nil
}

// bestOf picks the recommended configuration off the frontier: minimum
// EDP when that objective is enabled (the paper's efficiency headline),
// else minimum first enabled objective; ties break on point index via
// the frontier's ascending order. Feasible points win over infeasible.
func bestOf(frontier []FrontierPoint, objectives []string) *FrontierPoint {
	if len(frontier) == 0 {
		return nil
	}
	metric := func(fp FrontierPoint) float64 {
		v := fp.Objectives.vector(objectives)
		if len(v) == 0 {
			return fp.Objectives.EDP
		}
		for i, name := range objectives {
			if name == ObjectiveEDP {
				return v[i]
			}
		}
		return v[0]
	}
	best, bestVal := -1, math.Inf(1)
	for i, fp := range frontier {
		v := metric(fp)
		switch {
		case best < 0,
			fp.Feasible && !frontier[best].Feasible,
			fp.Feasible == frontier[best].Feasible && v < bestVal:
			best, bestVal = i, v
		}
	}
	fp := frontier[best]
	return &fp
}
